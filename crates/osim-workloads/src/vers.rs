//! Version-id discipline shared by every irregular workload.
//!
//! The garbage collector's rule 1 ties version order to task order. The
//! Fig. 1 protocol additionally needs two kinds of version per task:
//! *modification* versions (the values a task actually writes) and a
//! *pass* version (the rename created when the task releases a cell it
//! traversed, so that a follower's `LOCK-LOAD-LATEST` observes its
//! passage). A red-black rebalance can even write the same cell more than
//! once in one task.
//!
//! We therefore give each task a *slot* of [`STRIDE`] consecutive version
//! ids:
//!
//! * `base(tid) + s` for its `s`-th modification of a given cell
//!   (`s < STRIDE - 1`),
//! * `base(tid) + STRIDE - 1` as its pass/rename version and as the *cap*
//!   for its `LOAD-LATEST`/`LOCK-LOAD-LATEST` calls.
//!
//! Version order still mirrors task order (slots are disjoint and
//! monotonic in `tid`), so the GC reasoning of §III-B carries over
//! unchanged.

use osim_uarch::Version;

/// Version ids per task slot.
pub const STRIDE: u32 = 16;

/// First version id of task `tid`'s slot.
#[inline]
pub fn base(tid: u32) -> Version {
    tid.checked_mul(STRIDE).expect("task id overflow")
}

/// The `s`-th modification version of task `tid` (for one cell).
#[inline]
pub fn modv(tid: u32, s: u32) -> Version {
    debug_assert!(s < STRIDE - 1, "too many writes to one cell in one task");
    base(tid) + s
}

/// Task `tid`'s pass/rename version.
#[inline]
pub fn passv(tid: u32) -> Version {
    base(tid) + STRIDE - 1
}

/// The cap task `tid` uses for `LOAD-LATEST` flavours: everything up to and
/// including its own writes and renames.
#[inline]
pub fn cap(tid: u32) -> Version {
    passv(tid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint_and_ordered() {
        for tid in 1..100 {
            assert!(passv(tid) < base(tid + 1));
            assert!(modv(tid, 0) >= base(tid));
            assert!(modv(tid, STRIDE - 2) < passv(tid));
            assert_eq!(cap(tid), passv(tid));
        }
    }

    #[test]
    fn cap_sees_predecessors_but_not_successors() {
        let t = 7;
        assert!(cap(t) >= passv(t - 1));
        assert!(cap(t) >= modv(t, 3));
        assert!(cap(t) < modv(t + 1, 0));
    }

    #[test]
    #[should_panic(expected = "too many writes")]
    #[cfg(debug_assertions)]
    fn slot_overflow_is_caught() {
        modv(1, STRIDE - 1);
    }
}
