//! Unbalanced binary search tree (§IV-C, §IV-D, Figure 8).
//!
//! Three variants:
//!
//! * **Versioned parallel** — edge cells (child pointers) are O-structures;
//!   mutators enter the root in task order, descend hand-over-hand, and a
//!   delete locks its whole splice region before storing, so snapshot
//!   readers can never observe a half-restructured tree.
//! * **Unversioned sequential** — the Fig. 6 baseline.
//! * **Read-write lock parallel** — the Fig. 8 baseline: the same
//!   unversioned tree under one [`SimRwLock`]; scans take the lock shared,
//!   inserts take it exclusive.
//!
//! Node layout (conventional heap, 12 bytes): `+0` key, `+4` va of the
//! versioned *left* cell, `+8` va of the versioned *right* cell (the
//! unversioned variants store child node addresses directly at `+4`/`+8`).

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg, SimRwLock, TaskCtx};
use osim_uarch::Version;

use crate::harness::{self, DsCfg, DsResult, Op, OpResult};
use crate::vers;

const NODE_BYTES: u32 = 12;
const HOP_WORK: u64 = 6;
const OP_WORK: u64 = 20;

// ----------------------------------------------------------------------
// Host-side shape builder (population)
// ----------------------------------------------------------------------

/// Builds the BST shape that sequential insertion of `keys` produces.
/// Returns `(nodes, root_index)`; children are indices into the vec
/// (`usize::MAX` = none).
fn host_shape(keys: &[u32]) -> (Vec<(u32, usize, usize)>, usize) {
    const NONE: usize = usize::MAX;
    let mut nodes: Vec<(u32, usize, usize)> = Vec::with_capacity(keys.len());
    let mut root = NONE;
    for &k in keys {
        if root == NONE {
            root = 0;
            nodes.push((k, NONE, NONE));
            continue;
        }
        let mut at = root;
        loop {
            let (nk, l, r) = nodes[at];
            if k == nk {
                break;
            } else if k < nk {
                if l == NONE {
                    nodes.push((k, NONE, NONE));
                    nodes[at].1 = nodes.len() - 1;
                    break;
                }
                at = l;
            } else {
                if r == NONE {
                    nodes.push((k, NONE, NONE));
                    nodes[at].2 = nodes.len() - 1;
                    break;
                }
                at = r;
            }
        }
    }
    (nodes, root)
}

// ----------------------------------------------------------------------
// Versioned variant
// ----------------------------------------------------------------------

async fn new_vnode(ctx: &TaskCtx, key: u32) -> (u32, u32, u32) {
    let node = ctx.malloc(NODE_BYTES).await;
    let lcell = ctx.malloc_root().await;
    let rcell = ctx.malloc_root().await;
    ctx.store_u32(node, key).await;
    ctx.store_u32(node + 4, lcell).await;
    ctx.store_u32(node + 8, rcell).await;
    (node, lcell, rcell)
}

/// Population: materialize the host shape bottom-up, one version per cell.
async fn populate_versioned(ctx: TaskCtx, root_cell: u32, keys: Vec<u32>) {
    const NONE: usize = usize::MAX;
    let pv = vers::passv(ctx.tid());
    let (nodes, root) = host_shape(&keys);
    let mut vas = vec![0u32; nodes.len()];
    // Children before parents: explicit post-order stack.
    let mut stack = Vec::new();
    if root != NONE {
        stack.push((root, false));
    }
    while let Some((i, expanded)) = stack.pop() {
        let (k, l, r) = nodes[i];
        if !expanded {
            stack.push((i, true));
            if l != NONE {
                stack.push((l, false));
            }
            if r != NONE {
                stack.push((r, false));
            }
            continue;
        }
        let (va, lcell, rcell) = new_vnode(&ctx, k).await;
        let lva = if l == NONE { 0 } else { vas[l] };
        let rva = if r == NONE { 0 } else { vas[r] };
        ctx.store_version(lcell, pv, lva).await;
        ctx.store_version(rcell, pv, rva).await;
        vas[i] = va;
    }
    let root_va = if root == NONE { 0 } else { vas[root] };
    ctx.store_version(root_cell, pv, root_va).await;
}

/// Loads a node's key and the vas of its two edge cells.
async fn node_fields(ctx: &TaskCtx, node: u32) -> (u32, u32, u32) {
    let k = ctx.load_u32(node).await;
    let l = ctx.load_u32(node + 4).await;
    let r = ctx.load_u32(node + 8).await;
    (k, l, r)
}

/// Releases the final held edge, optionally publishing a new child value.
/// Root edges always get the task's pass version (the next entry point).
async fn release(ctx: &TaskCtx, cell: u32, locked: Version, is_root: bool, new_value: Option<u32>) {
    let tid = ctx.tid();
    let pass = vers::passv(tid);
    match new_value {
        Some(v) => {
            ctx.store_version(cell, vers::modv(tid, 0), v).await;
            if is_root {
                ctx.store_version(cell, pass, v).await;
            }
            ctx.unlock_version(cell, locked, None).await;
        }
        None => {
            ctx.unlock_version(cell, locked, if is_root { Some(pass) } else { None })
                .await;
        }
    }
}

/// A mutating task (insert or delete).
async fn mutate(ctx: &TaskCtx, root_cell: u32, entry: Version, op: Op) -> OpResult {
    let tid = ctx.tid();
    let cap = vers::cap(tid);
    let pass = vers::passv(tid);
    let key = match op {
        Op::Insert(k) | Op::Delete(k) => k,
        _ => unreachable!("mutate with read op"),
    };
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    let mut cur = ctx.lock_load_version(root_cell, entry).await;
    let mut prev_cell = root_cell;
    let mut prev_locked = entry;
    // Descend hand-over-hand until the key or an empty edge.
    let mut found: Option<(u32, u32, u32)> = None; // (node, lcell, rcell)
    while cur != 0 {
        let (k, lcell, rcell) = node_fields(ctx, cur).await;
        ctx.work(HOP_WORK).await;
        if k == key {
            found = Some((cur, lcell, rcell));
            break;
        }
        let cell = if key < k { lcell } else { rcell };
        let (vl, nxt) = ctx.lock_load_latest(cell, cap).await;
        // Only the root edge is renamed (the next task's entry version);
        // inner edges are ordered by the locks alone.
        let create = (prev_cell == root_cell).then_some(pass);
        ctx.unlock_version(prev_cell, prev_locked, create).await;
        prev_cell = cell;
        prev_locked = vl;
        cur = nxt;
    }
    let at_root = prev_cell == root_cell;

    match op {
        Op::Insert(k) => {
            if found.is_some() {
                release(ctx, prev_cell, prev_locked, at_root, None).await;
                return OpResult::Inserted(false);
            }
            ctx.work(OP_WORK).await;
            let (node, lcell, rcell) = new_vnode(ctx, k).await;
            // Publish the fresh node's empty edges before linking it in.
            ctx.store_version(lcell, vers::modv(tid, 0), 0).await;
            ctx.store_version(rcell, vers::modv(tid, 0), 0).await;
            release(ctx, prev_cell, prev_locked, at_root, Some(node)).await;
            OpResult::Inserted(true)
        }
        Op::Delete(_) => {
            let Some((_, lcell, rcell)) = found else {
                release(ctx, prev_cell, prev_locked, at_root, None).await;
                return OpResult::Deleted(false);
            };
            ctx.work(OP_WORK).await;
            // Lock the whole splice region before storing anything, so
            // snapshot readers block at the frontier instead of observing a
            // half-restructured tree, and predecessors below are drained.
            let (lvl, l) = ctx.lock_load_latest(lcell, cap).await;
            let (rvl, r) = ctx.lock_load_latest(rcell, cap).await;
            let replacement = if l == 0 {
                r
            } else if r == 0 {
                l
            } else {
                // Two children: find the in-order successor (min of the
                // right subtree) hand-over-hand.
                let mut pcell = rcell;
                let mut pvl = rvl;
                let mut s = r;
                let (s_final, slc, slvl, parent_is_rcell) = loop {
                    let (_, slcell, _) = node_fields(ctx, s).await;
                    ctx.work(HOP_WORK).await;
                    let (svl, sl) = ctx.lock_load_latest(slcell, cap).await;
                    if sl == 0 {
                        break (s, slcell, svl, pcell == rcell);
                    }
                    if pcell != rcell {
                        ctx.unlock_version(pcell, pvl, None).await;
                    }
                    pcell = slcell;
                    pvl = svl;
                    s = sl;
                };
                let s = s_final;
                let (_, _, srcell) = node_fields(ctx, s).await;
                if parent_is_rcell {
                    // Successor is the right child itself: graft the left
                    // subtree under it.
                    ctx.store_version(slc, vers::modv(tid, 0), l).await;
                    ctx.unlock_version(slc, slvl, None).await;
                } else {
                    // Unlink s from its parent, then take over both
                    // subtrees of the deleted node.
                    let (srvl, sr) = ctx.lock_load_latest(srcell, cap).await;
                    ctx.store_version(pcell, vers::modv(tid, 0), sr).await;
                    ctx.store_version(slc, vers::modv(tid, 0), l).await;
                    ctx.store_version(srcell, vers::modv(tid, 0), r).await;
                    ctx.unlock_version(srcell, srvl, None).await;
                    ctx.unlock_version(slc, slvl, None).await;
                    ctx.unlock_version(pcell, pvl, None).await;
                }
                s
            };
            ctx.unlock_version(rcell, rvl, None).await;
            ctx.unlock_version(lcell, lvl, None).await;
            release(ctx, prev_cell, prev_locked, at_root, Some(replacement)).await;
            OpResult::Deleted(true)
        }
        _ => unreachable!(),
    }
}

/// Snapshot point lookup.
async fn lookup(ctx: &TaskCtx, root_cell: u32, entry: Version, key: u32) -> OpResult {
    let cap = vers::cap(ctx.tid());
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    let mut cur = ctx.load_version(root_cell, entry).await;
    while cur != 0 {
        let (k, lcell, rcell) = node_fields(ctx, cur).await;
        ctx.work(HOP_WORK).await;
        if k == key {
            return OpResult::Found(true);
        }
        let cell = if key < k { lcell } else { rcell };
        (_, cur) = ctx.load_latest(cell, cap).await;
    }
    OpResult::Found(false)
}

/// Snapshot range scan: up to `range` keys ≥ `from`, ascending.
async fn scan(ctx: &TaskCtx, root_cell: u32, entry: Version, from: u32, range: u32) -> OpResult {
    let cap = vers::cap(ctx.tid());
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    let mut out = Vec::new();
    // Explicit in-order stack of (node, key) with key >= from.
    let mut stack: Vec<(u32, u32)> = Vec::new();
    let mut cur = ctx.load_version(root_cell, entry).await;
    loop {
        while cur != 0 {
            let (k, lcell, rcell) = node_fields(ctx, cur).await;
            ctx.work(HOP_WORK).await;
            if k >= from {
                stack.push((cur, k));
                (_, cur) = ctx.load_latest(lcell, cap).await;
            } else {
                (_, cur) = ctx.load_latest(rcell, cap).await;
            }
        }
        let Some((node, k)) = stack.pop() else { break };
        out.push(k);
        if out.len() as u32 >= range {
            break;
        }
        let rcell = ctx.load_u32(node + 8).await;
        (_, cur) = ctx.load_latest(rcell, cap).await;
    }
    OpResult::Scanned(out)
}

fn extract_versioned(m: &Machine, root_cell: u32) -> Vec<u32> {
    let st = m.state();
    let st = st.borrow();
    let latest = |cell: u32| -> u32 {
        st.omgr
            .peek_latest(&st.ms, cell, u32::MAX)
            .expect("valid cell")
            .map(|(_, v)| v)
            .unwrap_or(0)
    };
    let read = |va: u32| {
        st.ms
            .phys
            .read_u32(st.ms.pt.translate_conventional(va).expect("mapped"))
    };
    let mut out = Vec::new();
    let mut stack = vec![latest(root_cell)];
    while let Some(n) = stack.pop() {
        if n == 0 {
            continue;
        }
        out.push(read(n));
        stack.push(latest(read(n + 4)));
        stack.push(latest(read(n + 8)));
    }
    out.sort_unstable();
    out
}

/// Runs the versioned parallel BST.
pub fn run_versioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let root_cell = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc
            .alloc_root(&mut s.ms)
            .expect("simulated RAM exhausted")
    };
    let pop_tid = m.next_tid();
    let keys = initial.clone();
    m.run_tasks(vec![task(move |ctx| {
        populate_versioned(ctx, root_cell, keys)
    })])
    .expect("population");
    m.reset_stats();

    let results: Rc<RefCell<Vec<Option<OpResult>>>> = Rc::new(RefCell::new(vec![None; ops.len()]));
    let first = m.next_tid();
    let mut entry = vers::passv(pop_tid);
    let mut tasks = Vec::with_capacity(ops.len());
    for (i, &op) in ops.iter().enumerate() {
        let tid = first + i as u32;
        let e = entry;
        let is_write = matches!(op, Op::Insert(_) | Op::Delete(_));
        if is_write {
            entry = vers::passv(tid);
        }
        let results = Rc::clone(&results);
        tasks.push(task(move |ctx| async move {
            let r = match op {
                Op::Insert(_) | Op::Delete(_) => mutate(&ctx, root_cell, e, op).await,
                Op::Lookup(k) => lookup(&ctx, root_cell, e, k).await,
                Op::Scan(k, n) => scan(&ctx, root_cell, e, k, n).await,
            };
            results.borrow_mut()[i] = Some(r);
        }));
    }
    let report = m.run_tasks(tasks).expect("measurement deadlocked");

    let got: Vec<OpResult> = Rc::try_unwrap(results)
        .expect("tasks done")
        .into_inner()
        .into_iter()
        .map(|r| r.expect("op recorded"))
        .collect();
    let got_final = extract_versioned(&m, root_cell);
    let (ok, detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    harness::collect(&m, report.cycles(), ok, detail)
}

// ----------------------------------------------------------------------
// Unversioned tree (shared by the sequential and rwlock variants)
// ----------------------------------------------------------------------

async fn populate_unversioned(ctx: TaskCtx, root_word: u32, keys: Vec<u32>) {
    const NONE: usize = usize::MAX;
    let (nodes, root) = host_shape(&keys);
    let mut vas = vec![0u32; nodes.len()];
    let mut stack = Vec::new();
    if root != NONE {
        stack.push((root, false));
    }
    while let Some((i, expanded)) = stack.pop() {
        let (k, l, r) = nodes[i];
        if !expanded {
            stack.push((i, true));
            if l != NONE {
                stack.push((l, false));
            }
            if r != NONE {
                stack.push((r, false));
            }
            continue;
        }
        let va = ctx.malloc(NODE_BYTES).await;
        ctx.store_u32(va, k).await;
        ctx.store_u32(va + 4, if l == NONE { 0 } else { vas[l] })
            .await;
        ctx.store_u32(va + 8, if r == NONE { 0 } else { vas[r] })
            .await;
        vas[i] = va;
    }
    ctx.store_u32(root_word, if root == NONE { 0 } else { vas[root] })
        .await;
}

async fn unversioned_op(ctx: &TaskCtx, root_word: u32, op: Op) -> OpResult {
    ctx.work(OP_WORK).await;
    match op {
        Op::Lookup(key) => {
            let mut cur = ctx.load_u32(root_word).await;
            while cur != 0 {
                let k = ctx.load_u32(cur).await;
                ctx.work(HOP_WORK).await;
                if k == key {
                    return OpResult::Found(true);
                }
                cur = ctx.load_u32(cur + if key < k { 4 } else { 8 }).await;
            }
            OpResult::Found(false)
        }
        Op::Insert(key) => {
            let mut edge = root_word;
            let mut cur = ctx.load_u32(root_word).await;
            while cur != 0 {
                let k = ctx.load_u32(cur).await;
                ctx.work(HOP_WORK).await;
                if k == key {
                    return OpResult::Inserted(false);
                }
                edge = cur + if key < k { 4 } else { 8 };
                cur = ctx.load_u32(edge).await;
            }
            ctx.work(OP_WORK).await;
            let node = ctx.malloc(NODE_BYTES).await;
            ctx.store_u32(node, key).await;
            ctx.store_u32(node + 4, 0).await;
            ctx.store_u32(node + 8, 0).await;
            ctx.store_u32(edge, node).await;
            OpResult::Inserted(true)
        }
        Op::Delete(key) => {
            let mut edge = root_word;
            let mut cur = ctx.load_u32(root_word).await;
            while cur != 0 {
                let k = ctx.load_u32(cur).await;
                ctx.work(HOP_WORK).await;
                if k == key {
                    break;
                }
                edge = cur + if key < k { 4 } else { 8 };
                cur = ctx.load_u32(edge).await;
            }
            if cur == 0 {
                return OpResult::Deleted(false);
            }
            ctx.work(OP_WORK).await;
            let l = ctx.load_u32(cur + 4).await;
            let r = ctx.load_u32(cur + 8).await;
            let replacement = if l == 0 {
                r
            } else if r == 0 {
                l
            } else {
                // Splice the in-order successor out of the right subtree.
                let mut pedge = cur + 8;
                let mut s = r;
                loop {
                    let sl = ctx.load_u32(s + 4).await;
                    ctx.work(HOP_WORK).await;
                    if sl == 0 {
                        break;
                    }
                    pedge = s + 4;
                    s = sl;
                }
                if pedge != cur + 8 {
                    let sr = ctx.load_u32(s + 8).await;
                    ctx.store_u32(pedge, sr).await;
                    ctx.store_u32(s + 8, r).await;
                }
                ctx.store_u32(s + 4, l).await;
                s
            };
            ctx.store_u32(edge, replacement).await;
            OpResult::Deleted(true)
        }
        Op::Scan(from, range) => {
            let mut out = Vec::new();
            let mut stack: Vec<(u32, u32)> = Vec::new();
            let mut cur = ctx.load_u32(root_word).await;
            loop {
                while cur != 0 {
                    let k = ctx.load_u32(cur).await;
                    ctx.work(HOP_WORK).await;
                    if k >= from {
                        stack.push((cur, k));
                        cur = ctx.load_u32(cur + 4).await;
                    } else {
                        cur = ctx.load_u32(cur + 8).await;
                    }
                }
                let Some((node, k)) = stack.pop() else { break };
                out.push(k);
                if out.len() as u32 >= range {
                    break;
                }
                cur = ctx.load_u32(node + 8).await;
            }
            OpResult::Scanned(out)
        }
    }
}

fn extract_unversioned(m: &Machine, root_word: u32) -> Vec<u32> {
    let st = m.state();
    let st = st.borrow();
    let read = |va: u32| {
        st.ms
            .phys
            .read_u32(st.ms.pt.translate_conventional(va).expect("mapped"))
    };
    let mut out = Vec::new();
    let mut stack = vec![read(root_word)];
    while let Some(n) = stack.pop() {
        if n == 0 {
            continue;
        }
        out.push(read(n));
        stack.push(read(n + 4));
        stack.push(read(n + 8));
    }
    out.sort_unstable();
    out
}

/// Runs the unversioned sequential BST.
pub fn run_unversioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let root_word = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc
            .alloc_data(&mut s.ms, 4)
            .expect("simulated RAM exhausted")
    };
    let keys = initial.clone();
    m.run_tasks(vec![task(move |ctx| {
        populate_unversioned(ctx, root_word, keys)
    })])
    .expect("population");
    m.reset_stats();

    let results: Rc<RefCell<Vec<OpResult>>> = Rc::new(RefCell::new(Vec::new()));
    let ops2 = ops.clone();
    let results2 = Rc::clone(&results);
    let report = m
        .run_tasks(vec![task(move |ctx| async move {
            for &op in &ops2 {
                let r = unversioned_op(&ctx, root_word, op).await;
                results2.borrow_mut().push(r);
            }
        })])
        .expect("measurement");

    let got = Rc::try_unwrap(results).expect("task done").into_inner();
    let got_final = extract_unversioned(&m, root_word);
    let (ok, detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    harness::collect(&m, report.cycles(), ok, detail)
}

/// Runs the unversioned BST under a global read-write lock with one task
/// per operation (the Fig. 8 baseline).
///
/// The lock admits arbitrary interleavings, so per-operation results are
/// only checked against the reference for insert-only mixes (where the
/// final contents are order-independent); scans are checked for internal
/// consistency (sorted, within range) instead.
pub fn run_rwlock(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (_, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let (root_word, lock_word) = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        (
            s.alloc
                .alloc_data(&mut s.ms, 4)
                .expect("simulated RAM exhausted"),
            s.alloc
                .alloc_data(&mut s.ms, 4)
                .expect("simulated RAM exhausted"),
        )
    };
    let keys = initial.clone();
    m.run_tasks(vec![task(move |ctx| {
        populate_unversioned(ctx, root_word, keys)
    })])
    .expect("population");
    m.reset_stats();

    let scan_ok = Rc::new(RefCell::new(true));
    let mut tasks = Vec::with_capacity(ops.len());
    for &op in &ops {
        let scan_ok = Rc::clone(&scan_ok);
        tasks.push(task(move |ctx| async move {
            let lock = SimRwLock::at(lock_word);
            match op {
                Op::Lookup(_) | Op::Scan(_, _) => {
                    lock.read_lock(&ctx).await;
                    let r = unversioned_op(&ctx, root_word, op).await;
                    lock.read_unlock(&ctx).await;
                    if let (Op::Scan(from, range), OpResult::Scanned(keys)) = (op, &r) {
                        let sorted = keys.windows(2).all(|w| w[0] < w[1]);
                        let bounded = keys.len() as u32 <= range && keys.iter().all(|&k| k >= from);
                        if !(sorted && bounded) {
                            *scan_ok.borrow_mut() = false;
                        }
                    }
                }
                Op::Insert(_) | Op::Delete(_) => {
                    lock.write_lock(&ctx).await;
                    unversioned_op(&ctx, root_word, op).await;
                    lock.write_unlock(&ctx).await;
                }
            }
        }));
    }
    let report = m.run_tasks(tasks).expect("measurement");

    let got_final = extract_unversioned(&m, root_word);
    let (mut ok, mut detail) = if cfg.insert_only {
        if got_final == want_final {
            (true, String::new())
        } else {
            (false, "rwlock final contents differ".to_string())
        }
    } else {
        (true, String::new())
    };
    if !*scan_ok.borrow() {
        ok = false;
        detail = "rwlock scan returned unsorted/out-of-range keys".into();
    }
    harness::collect(&m, report.cycles(), ok, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(initial: usize, ops: usize, rpw: u32) -> DsCfg {
        DsCfg {
            initial,
            ops,
            reads_per_write: rpw,
            scan_range: 0,
            key_space: (initial as u32) * 4,
            seed: 11,
            insert_only: false,
        }
    }

    #[test]
    fn host_shape_is_a_bst() {
        let keys = vec![5, 2, 8, 1, 3, 9, 2];
        let (nodes, root) = host_shape(&keys);
        assert_eq!(nodes.len(), 6, "duplicate key not re-inserted");
        fn check(nodes: &[(u32, usize, usize)], i: usize, lo: u32, hi: u32) {
            if i == usize::MAX {
                return;
            }
            let (k, l, r) = nodes[i];
            assert!(k >= lo && k < hi);
            check(nodes, l, lo, k);
            check(nodes, r, k + 1, hi);
        }
        check(&nodes, root, 0, u32::MAX);
    }

    #[test]
    fn unversioned_sequential_matches_reference() {
        run_unversioned(MachineCfg::paper(1), &cfg(60, 80, 4)).assert_ok();
    }

    #[test]
    fn versioned_parallel_matches_reference() {
        run_versioned(MachineCfg::paper(4), &cfg(60, 80, 4)).assert_ok();
    }

    #[test]
    fn versioned_write_intensive_with_deletes() {
        // 1R-1W exercises the two-children delete splice heavily.
        run_versioned(MachineCfg::paper(8), &cfg(80, 100, 1)).assert_ok();
    }

    #[test]
    fn versioned_scans_match_reference() {
        let mut c = cfg(60, 60, 3);
        c.scan_range = 8;
        c.insert_only = true;
        run_versioned(MachineCfg::paper(4), &c).assert_ok();
    }

    #[test]
    fn rwlock_parallel_final_state_validates() {
        let mut c = cfg(60, 60, 3);
        c.scan_range = 8;
        c.insert_only = true;
        run_rwlock(MachineCfg::paper(4), &c).assert_ok();
    }

    #[test]
    fn versioned_parallel_beats_sequential_versioned() {
        let c = cfg(100, 96, 4);
        let seq = run_versioned(MachineCfg::paper(1), &c);
        let par = run_versioned(MachineCfg::paper(8), &c);
        seq.assert_ok();
        par.assert_ok();
        assert!(par.cycles < seq.cycles, "{} vs {}", par.cycles, seq.cycles);
    }

    #[test]
    fn deterministic() {
        let c = cfg(50, 50, 4);
        let a = run_versioned(MachineCfg::paper(4), &c);
        let b = run_versioned(MachineCfg::paper(4), &c);
        assert_eq!(a.cycles, b.cycles);
    }
}
