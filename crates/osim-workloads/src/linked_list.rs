//! Sorted singly-linked list (§II-B Figure 1, §IV-D).
//!
//! Node layout in conventional heap (8 bytes): `+0` key, `+4` the virtual
//! address of the node's versioned `next` cell. The `next` cells and the
//! list head cell are O-structure roots; only pointers are versioned, as in
//! the paper's library API (`versioned<node_t*> next`).
//!
//! Mutating tasks enter the list in task order by `LOCK-LOAD-VERSION` on
//! the head cell at their *entry version* (the pass version of the nearest
//! preceding mutator), traverse hand-over-hand with `LOCK-LOAD-LATEST`,
//! renaming each cell they move past; readers enter with `LOAD-VERSION`
//! (no lock) and traverse with `LOAD-LATEST` capped at their own slot,
//! giving them a consistent snapshot of the list as of their program point.

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg, TaskCtx};
use osim_uarch::Version;

use crate::harness::{self, DsCfg, DsResult, Op, OpResult};
use crate::vers;

const NODE_BYTES: u32 = 8;
/// Instruction budget per traversal hop (compare + branch + chase).
const HOP_WORK: u64 = 4;
/// Instruction budget per operation (call overhead, hashing the op, ...).
const OP_WORK: u64 = 20;

async fn new_node(ctx: &TaskCtx, key: u32) -> (u32, u32) {
    let node = ctx.malloc(NODE_BYTES).await;
    let cell = ctx.malloc_root().await;
    ctx.store_u32(node, key).await;
    ctx.store_u32(node + 4, cell).await;
    (node, cell)
}

/// Builds the initial list (population phase, single task).
async fn populate_versioned(ctx: TaskCtx, head_cell: u32, mut keys: Vec<u32>) {
    keys.sort_unstable();
    let pv = vers::passv(ctx.tid());
    let mut next = 0u32;
    for &key in keys.iter().rev() {
        let (node, cell) = new_node(&ctx, key).await;
        ctx.store_version(cell, pv, next).await;
        next = node;
    }
    ctx.store_version(head_cell, pv, next).await;
}

/// A mutating task: hand-over-hand descent, then insert/delete at the
/// located position. Always publishes its pass version at the head cell so
/// the next task's entry version exists.
async fn mutate(
    ctx: &TaskCtx,
    head_cell: u32,
    entry: Version,
    op: Op,
    rename_on_pass: bool,
) -> OpResult {
    let tid = ctx.tid();
    let cap = vers::cap(tid);
    let pass = vers::passv(tid);
    let key = match op {
        Op::Insert(k) | Op::Delete(k) => k,
        _ => unreachable!("mutate called with a read op"),
    };
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    let mut cur = ctx.lock_load_version(head_cell, entry).await;
    let mut prev_cell = head_cell;
    let mut prev_locked = entry;
    // Key of the node `cur`, once known (None while cur == 0).
    let mut cur_key = None;
    loop {
        if cur == 0 {
            break;
        }
        let k = ctx.load_u32(cur).await;
        ctx.work(HOP_WORK).await;
        if k >= key {
            cur_key = Some(k);
            break;
        }
        let cell = ctx.load_u32(cur + 4).await;
        let (vl, nxt) = ctx.lock_load_latest(cell, cap).await;
        // Release the trailing lock. The head cell is always renamed (it
        // carries the next task's entry version); inner cells are renamed
        // only in the Fig. 1-faithful variant — lock serialization already
        // maintains ordering, so the rename is version churn, not a
        // correctness requirement.
        let create = if prev_cell == head_cell || rename_on_pass {
            Some(pass)
        } else {
            None
        };
        ctx.unlock_version(prev_cell, prev_locked, create).await;
        prev_cell = cell;
        prev_locked = vl;
        cur = nxt;
    }

    let at_head = prev_cell == head_cell;
    match op {
        Op::Insert(k) => {
            if cur_key == Some(k) {
                // Key present: release and report a no-op insert.
                release(ctx, prev_cell, prev_locked, at_head, pass, None).await;
                OpResult::Inserted(false)
            } else {
                ctx.work(OP_WORK).await;
                let (node, cell) = new_node(ctx, k).await;
                ctx.store_version(cell, vers::modv(tid, 0), cur).await;
                release(ctx, prev_cell, prev_locked, at_head, pass, Some(node)).await;
                OpResult::Inserted(true)
            }
        }
        Op::Delete(k) => {
            if cur_key == Some(k) {
                ctx.work(OP_WORK).await;
                // Take the victim's next pointer, then splice it out.
                let vcell = ctx.load_u32(cur + 4).await;
                let (vvl, vnext) = ctx.lock_load_latest(vcell, cap).await;
                release(ctx, prev_cell, prev_locked, at_head, pass, Some(vnext)).await;
                // The victim's cell is renamed so any follower that locked
                // ahead sees the passage; the node memory itself stays
                // allocated for snapshot readers (§III-C).
                ctx.unlock_version(vcell, vvl, None).await;
                OpResult::Deleted(true)
            } else {
                release(ctx, prev_cell, prev_locked, at_head, pass, None).await;
                OpResult::Deleted(false)
            }
        }
        _ => unreachable!(),
    }
}

/// Releases the final held cell. `new_value = Some(v)` publishes a
/// modification first. Head cells additionally get the task's pass version
/// (the next task's entry point); for unmodified cells `UNLOCK-VERSION`'s
/// create-option does that copy in one instruction.
async fn release(
    ctx: &TaskCtx,
    cell: u32,
    locked: Version,
    is_head: bool,
    pass: Version,
    new_value: Option<u32>,
) {
    let tid = ctx.tid();
    match new_value {
        Some(v) => {
            ctx.store_version(cell, vers::modv(tid, 0), v).await;
            if is_head {
                ctx.store_version(cell, pass, v).await;
            }
            ctx.unlock_version(cell, locked, None).await;
        }
        None => {
            ctx.unlock_version(cell, locked, if is_head { Some(pass) } else { None })
                .await;
        }
    }
}

/// A read-only task: snapshot traversal with `LOAD-LATEST`.
async fn read(ctx: &TaskCtx, head_cell: u32, entry: Version, op: Op) -> OpResult {
    let tid = ctx.tid();
    let cap = vers::cap(tid);
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    let mut cur = ctx.load_version(head_cell, entry).await;
    let key = match op {
        Op::Lookup(k) | Op::Scan(k, _) => k,
        _ => unreachable!("read called with a write op"),
    };
    let mut cur_key = None;
    loop {
        if cur == 0 {
            break;
        }
        let k = ctx.load_u32(cur).await;
        ctx.work(HOP_WORK).await;
        if k >= key {
            cur_key = Some(k);
            break;
        }
        let cell = ctx.load_u32(cur + 4).await;
        (_, cur) = ctx.load_latest(cell, cap).await;
    }
    match op {
        Op::Lookup(k) => OpResult::Found(cur_key == Some(k)),
        Op::Scan(_, range) => {
            let mut out = Vec::new();
            while cur != 0 && (out.len() as u32) < range {
                out.push(ctx.load_u32(cur).await);
                ctx.work(HOP_WORK).await;
                let cell = ctx.load_u32(cur + 4).await;
                (_, cur) = ctx.load_latest(cell, cap).await;
            }
            OpResult::Scanned(out)
        }
        _ => unreachable!(),
    }
}

/// Reads the final list contents without touching timing state.
fn extract_versioned(m: &Machine, head_cell: u32) -> Vec<u32> {
    let st = m.state();
    let st = st.borrow();
    let latest = |cell: u32| -> u32 {
        st.omgr
            .peek_latest(&st.ms, cell, u32::MAX)
            .expect("valid cell")
            .map(|(_, v)| v)
            .unwrap_or(0)
    };
    let mut out = Vec::new();
    let mut cur = latest(head_cell);
    while cur != 0 {
        let pa = st.ms.pt.translate_conventional(cur).expect("node mapped");
        out.push(st.ms.phys.read_u32(pa));
        let cell = st.ms.phys.read_u32(pa + 4);
        cur = latest(cell);
    }
    out
}

/// Runs the versioned parallel list on the given machine configuration
/// (without per-pass renames; see [`run_versioned_with`]).
pub fn run_versioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    run_versioned_with(mcfg, cfg, false)
}

/// Runs the versioned parallel list. `rename_on_pass = true` follows
/// Fig. 1 to the letter: every cell a mutator moves past is renamed to its
/// pass version, generating the version churn the §IV-F garbage-collection
/// experiment measures.
pub fn run_versioned_with(mcfg: MachineCfg, cfg: &DsCfg, rename_on_pass: bool) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let head_cell = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc
            .alloc_root(&mut s.ms)
            .expect("simulated RAM exhausted")
    };

    // Population phase (excluded from measurement).
    let pop_tid = m.next_tid();
    let keys = initial.clone();
    m.run_tasks(vec![task(move |ctx| {
        populate_versioned(ctx, head_cell, keys)
    })])
    .expect("population");
    m.reset_stats();

    // Measurement phase: one task per operation.
    let results: Rc<RefCell<Vec<Option<OpResult>>>> = Rc::new(RefCell::new(vec![None; ops.len()]));
    let first = m.next_tid();
    let mut entry = vers::passv(pop_tid);
    let mut tasks = Vec::with_capacity(ops.len());
    for (i, &op) in ops.iter().enumerate() {
        let tid = first + i as u32;
        let e = entry;
        let is_write = matches!(op, Op::Insert(_) | Op::Delete(_));
        if is_write {
            entry = vers::passv(tid);
        }
        let results = Rc::clone(&results);
        tasks.push(task(move |ctx| async move {
            let r = if is_write {
                mutate(&ctx, head_cell, e, op, rename_on_pass).await
            } else {
                read(&ctx, head_cell, e, op).await
            };
            results.borrow_mut()[i] = Some(r);
        }));
    }
    let report = m.run_tasks(tasks).expect("measurement deadlocked");

    let got: Vec<OpResult> = Rc::try_unwrap(results)
        .expect("all tasks done")
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every op recorded"))
        .collect();
    let got_final = extract_versioned(&m, head_cell);
    let (ok, detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    harness::collect(&m, report.cycles(), ok, detail)
}

// ----------------------------------------------------------------------
// Unversioned sequential baseline
// ----------------------------------------------------------------------

async fn unversioned_op(ctx: &TaskCtx, head: u32, op: Op) -> OpResult {
    let key = match op {
        Op::Lookup(k) | Op::Insert(k) | Op::Delete(k) | Op::Scan(k, _) => k,
    };
    ctx.work(OP_WORK).await;
    // prev points at the word holding the link to cur.
    let mut prev = head;
    let mut cur = ctx.load_u32(head).await;
    let mut cur_key = None;
    loop {
        if cur == 0 {
            break;
        }
        let k = ctx.load_u32(cur).await;
        ctx.work(HOP_WORK).await;
        if k >= key {
            cur_key = Some(k);
            break;
        }
        prev = cur + 4;
        cur = ctx.load_u32(cur + 4).await;
    }
    match op {
        Op::Lookup(k) => OpResult::Found(cur_key == Some(k)),
        Op::Insert(k) => {
            if cur_key == Some(k) {
                OpResult::Inserted(false)
            } else {
                ctx.work(OP_WORK).await;
                let node = ctx.malloc(NODE_BYTES).await;
                ctx.store_u32(node, k).await;
                ctx.store_u32(node + 4, cur).await;
                ctx.store_u32(prev, node).await;
                OpResult::Inserted(true)
            }
        }
        Op::Delete(k) => {
            if cur_key == Some(k) {
                ctx.work(OP_WORK).await;
                let next = ctx.load_u32(cur + 4).await;
                ctx.store_u32(prev, next).await;
                OpResult::Deleted(true)
            } else {
                OpResult::Deleted(false)
            }
        }
        Op::Scan(_, range) => {
            let mut out = Vec::new();
            while cur != 0 && (out.len() as u32) < range {
                out.push(ctx.load_u32(cur).await);
                ctx.work(HOP_WORK).await;
                cur = ctx.load_u32(cur + 4).await;
            }
            OpResult::Scanned(out)
        }
    }
}

fn extract_unversioned(m: &Machine, head: u32) -> Vec<u32> {
    let st = m.state();
    let st = st.borrow();
    let read = |va: u32| {
        st.ms
            .phys
            .read_u32(st.ms.pt.translate_conventional(va).expect("mapped"))
    };
    let mut out = Vec::new();
    let mut cur = read(head);
    while cur != 0 {
        out.push(read(cur));
        cur = read(cur + 4);
    }
    out
}

/// Runs the unversioned list, all operations in one sequential task.
pub fn run_unversioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let head = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc
            .alloc_data(&mut s.ms, 4)
            .expect("simulated RAM exhausted")
    };

    // Population: sequential inserts in sorted order (cheap to build).
    let mut keys = initial.clone();
    keys.sort_unstable();
    m.run_tasks(vec![task(move |ctx| async move {
        let mut next = 0u32;
        for &key in keys.iter().rev() {
            let node = ctx.malloc(NODE_BYTES).await;
            ctx.store_u32(node, key).await;
            ctx.store_u32(node + 4, next).await;
            next = node;
        }
        ctx.store_u32(head, next).await;
    })])
    .expect("population");
    m.reset_stats();

    let results: Rc<RefCell<Vec<OpResult>>> = Rc::new(RefCell::new(Vec::new()));
    let ops2 = ops.clone();
    let results2 = Rc::clone(&results);
    let report = m
        .run_tasks(vec![task(move |ctx| async move {
            for &op in &ops2 {
                let r = unversioned_op(&ctx, head, op).await;
                results2.borrow_mut().push(r);
            }
        })])
        .expect("measurement");

    let got = Rc::try_unwrap(results).expect("task done").into_inner();
    let got_final = extract_unversioned(&m, head);
    let (ok, detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    harness::collect(&m, report.cycles(), ok, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DsCfg {
        DsCfg {
            initial: 40,
            ops: 60,
            reads_per_write: 4,
            scan_range: 0,
            key_space: 160,
            seed: 7,
            insert_only: false,
        }
    }

    #[test]
    fn unversioned_sequential_matches_reference() {
        let r = run_unversioned(MachineCfg::paper(1), &small_cfg());
        r.assert_ok();
        assert!(r.cycles > 0);
        assert_eq!(r.cpu.versioned_ops, 0);
    }

    #[test]
    fn versioned_sequential_matches_reference() {
        let r = run_versioned(MachineCfg::paper(1), &small_cfg());
        r.assert_ok();
        assert!(r.cpu.versioned_ops > 0);
    }

    #[test]
    fn versioned_parallel_matches_reference() {
        let r = run_versioned(MachineCfg::paper(4), &small_cfg());
        r.assert_ok();
    }

    #[test]
    fn versioned_parallel_write_intensive_matches_reference() {
        let mut cfg = small_cfg();
        cfg.reads_per_write = 1;
        let r = run_versioned(MachineCfg::paper(8), &cfg);
        r.assert_ok();
    }

    #[test]
    fn parallel_is_faster_than_sequential_versioned() {
        let cfg = DsCfg {
            initial: 60,
            ops: 80,
            reads_per_write: 4,
            scan_range: 0,
            key_space: 240,
            seed: 3,
            insert_only: false,
        };
        let seq = run_versioned(MachineCfg::paper(1), &cfg);
        let par = run_versioned(MachineCfg::paper(8), &cfg);
        seq.assert_ok();
        par.assert_ok();
        assert!(
            par.cycles < seq.cycles,
            "8-core {} vs 1-core {}",
            par.cycles,
            seq.cycles
        );
    }

    #[test]
    fn versioning_overhead_on_one_core() {
        // §IV-B: versioning adds non-trivial single-thread overhead.
        let cfg = small_cfg();
        let unv = run_unversioned(MachineCfg::paper(1), &cfg);
        let ver = run_versioned(MachineCfg::paper(1), &cfg);
        assert!(
            ver.cycles > unv.cycles,
            "versioned {} vs unversioned {}",
            ver.cycles,
            unv.cycles
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_cfg();
        let a = run_versioned(MachineCfg::paper(4), &cfg);
        let b = run_versioned(MachineCfg::paper(4), &cfg);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn scan_ops_work_on_list() {
        let mut cfg = small_cfg();
        cfg.scan_range = 4;
        let r = run_versioned(MachineCfg::paper(4), &cfg);
        r.assert_ok();
    }
}
