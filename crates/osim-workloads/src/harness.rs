//! Operation-mix generation, the host-side reference model, and result
//! validation for the irregular data-structure workloads.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use osim_cpu::{CpuStats, DepEdge, EngineStats, Machine, RunHists, Sample};
use osim_mem::MemStats;
use osim_uarch::{OStats, OracleReport};

/// Workload configuration for the irregular data structures.
#[derive(Debug, Clone)]
pub struct DsCfg {
    /// Initial number of elements (paper: 1000 small / 10000 large).
    pub initial: usize,
    /// Measured operations.
    pub ops: usize,
    /// Reads per write (paper: 4 read-intensive, 1 write-intensive).
    pub reads_per_write: u32,
    /// Range of scans; 0 means point lookups (Fig. 8 uses 1, 8, 64).
    pub scan_range: u32,
    /// Key universe; keys are drawn uniformly from `[0, key_space)`.
    pub key_space: u32,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Writes are all inserts (the Fig. 8 mix) instead of alternating
    /// insert/delete. Insert-only mixes have an order-independent final
    /// state, which lets the non-deterministic read-write-lock baseline be
    /// validated too.
    pub insert_only: bool,
}

impl DsCfg {
    /// The paper's *small* configuration: 1000 initial elements.
    pub fn small(ops: usize, reads_per_write: u32) -> Self {
        DsCfg {
            initial: 1000,
            ops,
            reads_per_write,
            scan_range: 0,
            key_space: 4000,
            seed: 0x05_1c_0c_75 ^ 0x5eed,
            insert_only: false,
        }
    }

    /// The paper's *large* configuration: 10000 initial elements.
    pub fn large(ops: usize, reads_per_write: u32) -> Self {
        DsCfg {
            initial: 10_000,
            ops,
            reads_per_write,
            scan_range: 0,
            key_space: 40_000,
            seed: 0x5eed,
            insert_only: false,
        }
    }
}

/// One operation of the measured mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Lookup(u32),
    /// Insert (no-op if the key exists).
    Insert(u32),
    /// Delete (no-op if the key is absent).
    Delete(u32),
    /// Range scan: up to `.1` keys starting at the smallest key ≥ `.0`.
    Scan(u32, u32),
}

/// The observable outcome of one operation — compared against the
/// sequential reference to check the determinism claim of §IV-D.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Lookup outcome.
    Found(bool),
    /// Insert outcome (false = key already present).
    Inserted(bool),
    /// Delete outcome (false = key was absent).
    Deleted(bool),
    /// Keys returned by a scan, in ascending order.
    Scanned(Vec<u32>),
}

/// Generates `cfg.initial` distinct keys (unsorted).
pub fn gen_initial(cfg: &DsCfg) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut set = BTreeSet::new();
    while set.len() < cfg.initial {
        set.insert(rng.gen_range(0..cfg.key_space));
    }
    // Shuffle by re-drawing order from the rng for structure-shape realism.
    let mut keys: Vec<u32> = set.into_iter().collect();
    for i in (1..keys.len()).rev() {
        keys.swap(i, rng.gen_range(0..=i));
    }
    keys
}

/// Generates the measured operation mix: `reads_per_write` reads per
/// write, writes alternating insert/delete so the footprint stays stable
/// (§IV-D), reads being scans when `scan_range > 0`.
pub fn gen_ops(cfg: &DsCfg) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut ops = Vec::with_capacity(cfg.ops);
    let mut insert_next = true;
    let mut since_write = 0;
    while ops.len() < cfg.ops {
        let key = rng.gen_range(0..cfg.key_space);
        if since_write >= cfg.reads_per_write {
            since_write = 0;
            if cfg.insert_only || insert_next {
                ops.push(Op::Insert(key));
            } else {
                ops.push(Op::Delete(key));
            }
            insert_next = !insert_next;
        } else {
            since_write += 1;
            if cfg.scan_range > 0 {
                ops.push(Op::Scan(key, cfg.scan_range));
            } else {
                ops.push(Op::Lookup(key));
            }
        }
    }
    ops
}

/// Replays initial keys + operations on a host [`BTreeSet`], producing the
/// sequential-semantics results and the expected final contents.
pub fn replay_reference(initial: &[u32], ops: &[Op]) -> (Vec<OpResult>, Vec<u32>) {
    let mut set: BTreeSet<u32> = initial.iter().copied().collect();
    let mut results = Vec::with_capacity(ops.len());
    for op in ops {
        results.push(match *op {
            Op::Lookup(k) => OpResult::Found(set.contains(&k)),
            Op::Insert(k) => OpResult::Inserted(set.insert(k)),
            Op::Delete(k) => OpResult::Deleted(set.remove(&k)),
            Op::Scan(k, n) => OpResult::Scanned(set.range(k..).take(n as usize).copied().collect()),
        });
    }
    (results, set.into_iter().collect())
}

/// Outcome of one simulated workload run.
#[derive(Debug, Clone)]
pub struct DsResult {
    /// Measured cycles (population excluded).
    pub cycles: u64,
    /// Core statistics for the measured phase.
    pub cpu: CpuStats,
    /// Memory statistics for the measured phase.
    pub mem: MemStats,
    /// O-structure manager statistics for the measured phase.
    pub ostats: OStats,
    /// Engine dispatch-loop counters for the whole run (scheduler-invariant,
    /// so safe to include in byte-compared reports).
    pub engine: EngineStats,
    /// Latency histograms from every layer, for the measured phase. All
    /// simulated-cycle quantities (scheduler-invariant).
    pub hists: RunHists,
    /// True when results and final contents matched the reference.
    pub ok: bool,
    /// Human-readable mismatch description (empty when `ok`).
    pub detail: String,
    /// Captured dependency-flow edges (empty unless capture was armed).
    pub deps: Vec<DepEdge>,
    /// Edges overwritten in the bounded ring.
    pub deps_dropped: u64,
    /// Interval-telemetry samples (empty unless the sampler was armed).
    pub timeseries: Vec<Sample>,
    /// Samples overwritten in the bounded ring.
    pub samples_dropped: u64,
    /// `[start, end]` cycle window the captures cover (end = machine time
    /// at collection; start = end − measured cycles).
    pub window: (u64, u64),
    /// Invariant-oracle report for the whole run (None unless
    /// [`osim_uarch::OManagerCfg::oracles`] armed the checks).
    pub oracle: Option<OracleReport>,
}

impl DsResult {
    /// Panics with the mismatch detail unless the run validated.
    pub fn assert_ok(&self) -> &Self {
        assert!(self.ok, "workload validation failed: {}", self.detail);
        self
    }
}

/// Collects the statistics snapshot of a machine into a [`DsResult`].
pub fn collect(m: &Machine, cycles: u64, ok: bool, detail: String) -> DsResult {
    let st = m.state();
    let st = st.borrow();
    let end = m.now();
    DsResult {
        cycles,
        cpu: st.cpu.clone(),
        mem: st.ms.hier.stats.clone(),
        ostats: st.omgr.stats.clone(),
        engine: m.engine_stats(),
        hists: m.run_hists(),
        ok,
        detail,
        deps: st.deps.records(),
        deps_dropped: st.deps.dropped,
        timeseries: st.timeseries.records(),
        samples_dropped: st.timeseries.dropped,
        window: (end.saturating_sub(cycles), end),
        oracle: st.omgr.oracle_report().cloned(),
    }
}

/// Compares simulated per-op results and final keys against the reference.
pub fn validate(
    got_results: &[OpResult],
    got_final: &[u32],
    want_results: &[OpResult],
    want_final: &[u32],
) -> (bool, String) {
    if got_results.len() != want_results.len() {
        return (
            false,
            format!(
                "result count {} != expected {}",
                got_results.len(),
                want_results.len()
            ),
        );
    }
    for (i, (g, w)) in got_results.iter().zip(want_results).enumerate() {
        if g != w {
            return (false, format!("op {i}: got {g:?}, expected {w:?}"));
        }
    }
    if got_final != want_final {
        return (
            false,
            format!(
                "final contents differ: {} keys vs expected {}",
                got_final.len(),
                want_final.len()
            ),
        );
    }
    (true, String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DsCfg {
        DsCfg {
            initial: 50,
            ops: 100,
            reads_per_write: 4,
            scan_range: 0,
            key_space: 200,
            seed: 42,
            insert_only: false,
        }
    }

    #[test]
    fn insert_only_mix_has_no_deletes() {
        let mut c = cfg();
        c.insert_only = true;
        let ops = gen_ops(&c);
        assert!(!ops.iter().any(|o| matches!(o, Op::Delete(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::Insert(_))));
    }

    #[test]
    fn initial_keys_are_distinct_and_deterministic() {
        let a = gen_initial(&cfg());
        let b = gen_initial(&cfg());
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let set: BTreeSet<u32> = a.iter().copied().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn op_mix_matches_ratio() {
        let ops = gen_ops(&cfg());
        assert_eq!(ops.len(), 100);
        let reads = ops.iter().filter(|o| matches!(o, Op::Lookup(_))).count();
        let inserts = ops.iter().filter(|o| matches!(o, Op::Insert(_))).count();
        let deletes = ops.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        assert_eq!(inserts + deletes + reads, 100);
        // 4 reads per write.
        assert!((78..=82).contains(&reads), "reads {reads}");
        assert!(inserts.abs_diff(deletes) <= 1, "balanced writes");
    }

    #[test]
    fn scan_mode_replaces_lookups() {
        let mut c = cfg();
        c.scan_range = 8;
        let ops = gen_ops(&c);
        assert!(ops.iter().any(|o| matches!(o, Op::Scan(_, 8))));
        assert!(!ops.iter().any(|o| matches!(o, Op::Lookup(_))));
    }

    #[test]
    fn reference_replay_semantics() {
        let initial = vec![5, 1, 9];
        let ops = vec![
            Op::Lookup(5),
            Op::Lookup(2),
            Op::Insert(2),
            Op::Insert(2),
            Op::Delete(9),
            Op::Delete(9),
            Op::Scan(1, 2),
        ];
        let (results, fin) = replay_reference(&initial, &ops);
        assert_eq!(
            results,
            vec![
                OpResult::Found(true),
                OpResult::Found(false),
                OpResult::Inserted(true),
                OpResult::Inserted(false),
                OpResult::Deleted(true),
                OpResult::Deleted(false),
                OpResult::Scanned(vec![1, 2]),
            ]
        );
        assert_eq!(fin, vec![1, 2, 5]);
    }

    #[test]
    fn validate_reports_mismatch_position() {
        let a = vec![OpResult::Found(true)];
        let b = vec![OpResult::Found(false)];
        let (ok, detail) = validate(&a, &[], &b, &[]);
        assert!(!ok);
        assert!(detail.contains("op 0"));
        let (ok, _) = validate(&a, &[1], &a, &[1]);
        assert!(ok);
        let (ok, detail) = validate(&a, &[1], &a, &[2]);
        assert!(!ok);
        assert!(detail.contains("final contents"));
    }
}
