//! Property tests for the critical-path analysis and the report schema:
//! whatever (possibly nonsensical) edge soup capture hands over,
//! the extracted path must stay inside the measured window, its segments
//! must tile it exactly with no gaps or overlaps, and a report carrying
//! it must survive a JSON round-trip unchanged.

use proptest::prelude::*;

use osim_cpu::{CpuStats, DepEdge, EngineStats, MachineCfg, RunHists, Sample, StallCause};
use osim_mem::MemStats;
use osim_report::json::parse;
use osim_report::{CritPath, ReportScale, Segment, SimReport, TraceCounts};
use osim_uarch::OStats;

fn cause_strategy() -> impl Strategy<Value = StallCause> {
    prop_oneof![
        Just(StallCause::MissingVersion),
        Just(StallCause::LockedVersion),
        Just(StallCause::CoherenceInval),
        Just(StallCause::FreeListGc),
    ]
}

/// Arbitrary-ish edges with ordered timestamps (blocked ≤ produced ≤
/// woken) over a small task/address universe so chains actually form.
fn edge_strategy(horizon: u64) -> impl Strategy<Value = DepEdge> {
    (
        (
            0u32..4, // va index
            1u32..8, // consumer tid
            0u32..8, // producer tid (0 = unattributed)
            cause_strategy(),
        ),
        (
            0u64..horizon, // blocked_at
            0u64..horizon, // produce offset
            1u64..64,      // wake offset after produce
            1u32..16,      // version
        ),
    )
        .prop_map(
            |((va, consumer, producer, cause), (blocked, produce_off, wake_off, v))| {
                let produced_at = blocked.saturating_add(produce_off);
                let woken_at = produced_at + wake_off;
                DepEdge {
                    va: 0x1000 + va * 0x100,
                    awaited: v,
                    resolved: v,
                    cause,
                    consumer_tid: consumer,
                    consumer_core: consumer % 4,
                    producer_tid: producer,
                    producer_core: producer % 4,
                    produced_at,
                    blocked_at: blocked,
                    woken_at,
                    waited: woken_at - blocked,
                }
            },
        )
}

proptest! {
    /// The path never exceeds the measured window: its length is at most
    /// `end - start` (the run's measured cycles for that window).
    #[test]
    fn path_length_never_exceeds_total_cycles(
        edges in proptest::collection::vec(edge_strategy(4096), 0..40),
        start in 0u64..512,
        extent in 1u64..8192,
    ) {
        let window = (start, start + extent);
        let cp = CritPath::build(&edges, window);
        prop_assert!(cp.start == window.0);
        prop_assert!(cp.end <= window.1);
        prop_assert!(cp.length() <= extent);
    }

    /// Segments tile the path exactly: consecutive, non-empty, no gaps or
    /// overlaps, and their cycle sum equals the path length. Wait
    /// segments carry a cause, compute segments none — together the
    /// causes partition the path's cycles with nothing double-counted.
    #[test]
    fn segments_partition_the_path_exactly(
        edges in proptest::collection::vec(edge_strategy(2048), 0..40),
        extent in 1u64..4096,
    ) {
        let cp = CritPath::build(&edges, (0, extent));
        cp.validate().expect("tiling invariants");
        let mut cursor = cp.start;
        let mut by_kind = [0u64; 5]; // 4 causes + compute
        for s in &cp.segments {
            prop_assert_eq!(s.start, cursor, "no gap or overlap");
            prop_assert!(s.end > s.start, "no empty segment");
            cursor = s.end;
            by_kind[s.cause.map_or(4, |c| c.index())] += s.cycles();
        }
        prop_assert_eq!(cursor, cp.end);
        prop_assert_eq!(by_kind.iter().sum::<u64>(), cp.length());
        let waits: u64 = by_kind[..4].iter().sum();
        prop_assert_eq!(waits, cp.wait_cycles());
    }

    /// A current-schema report carrying a critical path and timeseries
    /// round-trips `to_json` → text → `from_json` exactly.
    #[test]
    fn capture_report_round_trips(
        edges in proptest::collection::vec(edge_strategy(2048), 0..20),
        samples in proptest::collection::vec(
            (
                1u64..1 << 20,
                0u64..1 << 20,
                (0u64..1 << 16, 0u64..1 << 16, 0u64..1 << 16, 0u64..1 << 16),
                0u64..4096,
            ),
            0..8,
        ),
        cycles in 1u64..1 << 30,
    ) {
        let mut r = SimReport::new(
            "analyze",
            "proptest",
            "capture",
            &MachineCfg::paper(2),
            ReportScale { small: 1, large: 2, ops: 3, mat_n: 4, lev_len: 5 },
            cycles,
            CpuStats::for_cores(2),
            MemStats::default(),
            OStats::default(),
            EngineStats::default(),
            RunHists::default(),
        );
        r.critpath = Some(CritPath::build(&edges, (0, cycles)));
        r.timeseries = samples
            .iter()
            .map(|&(at, instructions, (s0, s1, s2, s3), free_blocks)| Sample {
                at,
                instructions,
                stalls: [s0, s1, s2, s3],
                free_blocks,
                l1_hits: instructions / 2,
                l1_misses: instructions / 7,
                l2_hits: instructions / 11,
                l2_misses: instructions / 13,
            })
            .collect();
        r.trace = Some(TraceCounts {
            dep_edges: edges.len() as u64,
            samples: r.timeseries.len() as u64,
            ..TraceCounts::default()
        });
        let text = r.to_json().to_pretty();
        let back = SimReport::from_json(&parse(&text).expect("parses")).expect("valid");
        prop_assert_eq!(back.critpath, r.critpath);
        prop_assert_eq!(back.timeseries, r.timeseries);
        prop_assert_eq!(back.trace, r.trace);
        prop_assert_eq!(back.cycles, r.cycles);
    }
}

/// Deterministic sanity case alongside the properties: a hand-built
/// two-hop chain yields the documented segment structure.
#[test]
fn two_hop_chain_has_four_segments() {
    let mk = |consumer, producer, blocked, produced, woken| DepEdge {
        va: 0x2000,
        awaited: 1,
        resolved: 1,
        cause: StallCause::MissingVersion,
        consumer_tid: consumer,
        consumer_core: 0,
        producer_tid: producer,
        producer_core: 1,
        produced_at: produced,
        blocked_at: blocked,
        woken_at: woken,
        waited: woken - blocked,
    };
    let cp = CritPath::build(&[mk(2, 3, 10, 40, 50), mk(1, 2, 60, 80, 90)], (0, 100));
    cp.validate().unwrap();
    assert_eq!(
        cp.segments.iter().map(Segment::cycles).sum::<u64>(),
        cp.length()
    );
    assert_eq!(cp.segments.len(), 4);
    assert_eq!(cp.wait_cycles(), 70);
}
