//! Regression tests for the hardened report reader: mutated copies of the
//! committed schema-v4 fixture — truncations, byte flips, type swaps,
//! hostile nesting — must every one produce a typed error from
//! [`load_reports`], never a panic, while the pristine fixture (and its
//! array form) keeps loading.

use proptest::prelude::*;

use osim_report::{load_reports, SimReport};

const FIXTURE: &str = include_str!("fixtures/report_v4.json");

#[test]
fn pristine_fixture_loads_in_object_and_array_form() {
    let single = load_reports(FIXTURE).expect("committed fixture must load");
    assert_eq!(single.len(), 1);
    assert_eq!(single[0].experiment, "fig7");
    single[0].validate().expect("fixture validates");

    let arr = format!("[{FIXTURE},{FIXTURE}]");
    let both = load_reports(&arr).expect("array form must load");
    assert_eq!(both.len(), 2);
    assert_eq!(both[0].cycles, both[1].cycles);
}

#[test]
fn every_truncation_is_a_typed_error() {
    // A report cut off at any byte — a partial download, a full disk — is
    // never a valid document (or decodes to a non-report), so the loader
    // must return Err on all of them. Step 7 keeps the test fast while
    // still sampling every region of the document.
    for cut in (1..FIXTURE.len()).step_by(7) {
        if !FIXTURE.is_char_boundary(cut) {
            continue;
        }
        let truncated = &FIXTURE[..cut];
        assert!(
            load_reports(truncated).is_err(),
            "truncation at byte {cut} was accepted"
        );
    }
}

#[test]
fn structural_corruptions_are_typed_errors() {
    let cases: Vec<(&str, String)> = vec![
        ("empty file", String::new()),
        ("whitespace only", "  \n\t ".to_string()),
        ("not json at all", "####".to_string()),
        ("wrong document type", "42".to_string()),
        ("array of non-reports", "[1, 2, 3]".to_string()),
        (
            "object but not a report",
            r#"{"hello": "world"}"#.to_string(),
        ),
        (
            "schema field removed",
            FIXTURE.replacen("\"schema\": 4,", "", 1),
        ),
        (
            "schema from the future",
            FIXTURE.replacen("\"schema\": 4,", "\"schema\": 9999,", 1),
        ),
        (
            "cycles turned into a string",
            FIXTURE.replacen("\"cycles\": 66684,", "\"cycles\": \"many\",", 1),
        ),
        ("trailing garbage", format!("{FIXTURE} trailing")),
        ("second array element corrupt", format!("[{FIXTURE},{{}}]")),
        ("hostile nesting bomb", "[".repeat(1 << 17)),
    ];
    for (what, text) in cases {
        let got = load_reports(&text);
        assert!(got.is_err(), "{what}: corrupt input was accepted");
    }
    // The per-element error names the offending element.
    let err = load_reports(&format!("[{FIXTURE},{{}}]")).unwrap_err();
    assert!(err.contains("element 1"), "unhelpful error: {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-byte flips anywhere in the fixture either still parse (the
    /// flip landed in a string/number and produced a different but
    /// well-formed report) or fail with a typed error. Nothing panics.
    #[test]
    fn byte_flips_never_panic(pos in 0usize..6000, bit in 0u8..8) {
        let mut bytes = FIXTURE.as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(reports) = load_reports(&text) {
            // Whatever survived must still be a structurally whole report.
            prop_assert_eq!(reports.len(), 1);
        }
    }

    /// Random splices (delete a span, duplicate a span) never panic.
    #[test]
    fn random_splices_never_panic(start in 0usize..6000, len in 1usize..512, dup in any::<bool>()) {
        let bytes = FIXTURE.as_bytes();
        let start = start % bytes.len();
        let end = (start + len).min(bytes.len());
        let mutated: Vec<u8> = if dup {
            [&bytes[..end], &bytes[start..]].concat()
        } else {
            [&bytes[..start], &bytes[end..]].concat()
        };
        let text = String::from_utf8_lossy(&mutated);
        let _ = load_reports(&text);
    }
}

#[test]
fn loaded_fixture_round_trips_through_current_schema() {
    let reports = load_reports(FIXTURE).expect("fixture loads");
    let rendered = reports[0].to_json().to_pretty();
    let back = load_reports(&rendered).expect("re-rendered report loads");
    assert_eq!(back[0].cycles, reports[0].cycles);
    assert_eq!(back[0].experiment, reports[0].experiment);
    // Rendering upgrades to the current schema version.
    let v: Vec<SimReport> = back;
    v[0].validate().expect("upgraded report validates");
}
