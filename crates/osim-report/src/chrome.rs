//! Chrome trace-event exporter (loadable in Perfetto / `chrome://tracing`).
//!
//! Maps the cross-layer capture onto the trace-event JSON model:
//!
//! * **pid 0 "cores"** — one track per core (`tid` = core id) with each
//!   executed operation as a complete (`ph: "X"`) event, stall cause in
//!   `args`, and memory-hierarchy events as instants on the same track;
//! * **pid 1 "tasks"** — one track per task with its lifetime span (first
//!   to last traced operation);
//! * **pid 2 "version manager"** — GC phases as duration events plus
//!   free-list instants (carves, refill traps, watermark crossings);
//! * **pid 3 "telemetry"** — counter (`ph: "C"`) tracks from the interval
//!   sampler (instructions, stalls by cause, free blocks, cache hits),
//!   plus cumulative per-core stalled-cycle counters on the core tracks;
//! * dependency-flow edges as flow (`ph: "s"`/`"f"`) arrows from the
//!   producing core's track to the woken consumer's.
//!
//! Timestamps are simulated cycles written into the `ts`/`dur` fields
//! directly; `displayTimeUnit` is set so viewers render them compactly.
//! Every event name passes through [`clean_name`], which clips overlong
//! names and replaces non-printable characters — viewers choke on raw
//! control bytes, and names here can embed formatted addresses.

use std::collections::BTreeMap;

use osim_cpu::{DepEdge, Sample, TraceRecord};
use osim_mem::{MemEvent, MemEventKind};
use osim_metrics::HostSpan;
use osim_uarch::{MvmEvent, MvmEventKind};

use crate::json::{obj, Json};

const PID_CORES: u64 = 0;
const PID_TASKS: u64 = 1;
const PID_MVM: u64 = 2;
const PID_TELEMETRY: u64 = 3;

/// Longest event name emitted (viewers render, but truncate, long names;
/// a runaway formatted name would bloat the file for no display benefit).
const NAME_MAX: usize = 64;

/// Defensive name sanitizer: replaces non-printable characters (which
/// break some trace viewers' JSON handling) and clips to [`NAME_MAX`].
fn clean_name(raw: &str) -> String {
    raw.chars()
        .take(NAME_MAX)
        .map(|c| {
            if c.is_control() || c == '"' || c == '\\' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Builds the full Chrome trace-event document from the capture streams
/// of one traced run. `deps` and `samples` come from the causal-capture
/// rings and may be empty (capture off).
pub fn chrome_trace(
    ops: &[TraceRecord],
    mem: &[MemEvent],
    mvm: &[MvmEvent],
    deps: &[DepEdge],
    samples: &[Sample],
) -> Json {
    let mut events: Vec<Json> = Vec::new();

    // Last timestamp any stream reaches: counter tracks flush a final
    // sample here. Perfetto clips a counter series at its last sample, so
    // a counter that stops emitting mid-run reads as truncated (or worse,
    // as having dropped to nothing) even though the value simply stopped
    // changing.
    let run_end = ops
        .iter()
        .map(|r| r.end)
        .chain(mem.iter().map(|e| e.cycle))
        .chain(mvm.iter().map(|e| e.cycle))
        .chain(deps.iter().map(|d| d.woken_at))
        .chain(samples.iter().map(|s| s.at))
        .max()
        .unwrap_or(0);

    for (pid, name) in [
        (PID_CORES, "cores"),
        (PID_TASKS, "tasks"),
        (PID_MVM, "version manager"),
        (PID_TELEMETRY, "telemetry"),
    ] {
        events.push(obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::from_u64(pid)),
            ("tid", Json::from_u64(0)),
            ("args", obj(vec![("name", Json::Str(name.into()))])),
        ]));
    }

    // Per-core operation spans.
    for r in ops {
        let mut args = vec![
            ("task", Json::from_u64(r.tid as u64)),
            ("va", Json::Str(format!("{:#x}", r.va))),
            ("version", Json::from_u64(r.version as u64)),
        ];
        if let Some(cause) = r.stall {
            args.push(("stall_cause", Json::Str(cause.name().into())));
        }
        events.push(obj(vec![
            ("name", Json::Str(clean_name(r.kind.name()))),
            ("ph", Json::Str("X".into())),
            ("ts", Json::from_u64(r.start)),
            ("dur", Json::from_u64(r.end - r.start)),
            ("pid", Json::from_u64(PID_CORES)),
            ("tid", Json::from_u64(r.core as u64)),
            ("args", obj(args)),
        ]));
    }

    // Cumulative per-core stalled-op cycles as counter tracks (one series
    // per core, fed by the already-collected per-op stall attribution).
    // `(cumulative, last emitted ts)` per core, so the final flush below
    // knows which series already reach the end of the run.
    let mut stalled_cum: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for r in ops {
        if r.stall.is_some() {
            let e = stalled_cum.entry(r.core).or_insert((0, 0));
            e.0 += r.end - r.start;
            e.1 = r.end;
            events.push(core_stall_counter(r.core, r.end, e.0));
        }
    }
    // Final flush sample at run end for every stall-counter series.
    for (&core, &(cum, last_ts)) in &stalled_cum {
        if last_ts < run_end {
            events.push(core_stall_counter(core, run_end, cum));
        }
    }

    // Per-task lifetime spans (first traced op to last).
    let mut spans: BTreeMap<u32, (u64, u64, usize)> = BTreeMap::new();
    for r in ops {
        let e = spans.entry(r.tid).or_insert((r.start, r.end, r.core));
        e.0 = e.0.min(r.start);
        e.1 = e.1.max(r.end);
    }
    for (tid, (start, end, core)) in spans {
        events.push(obj(vec![
            ("name", Json::Str(clean_name(&format!("task {tid}")))),
            ("ph", Json::Str("X".into())),
            ("ts", Json::from_u64(start)),
            ("dur", Json::from_u64(end - start)),
            ("pid", Json::from_u64(PID_TASKS)),
            ("tid", Json::from_u64(tid as u64)),
            ("args", obj(vec![("core", Json::from_u64(core as u64))])),
        ]));
    }

    // Memory-hierarchy instants on the issuing (or victim) core's track.
    for e in mem {
        let mut args = vec![("pa", Json::Str(format!("{:#x}", e.pa)))];
        if let MemEventKind::Access { latency, .. } = e.kind {
            args.push(("latency", Json::from_u64(latency)));
        }
        events.push(obj(vec![
            ("name", Json::Str(clean_name(e.kind_name()))),
            ("ph", Json::Str("i".into())),
            ("s", Json::Str("t".into())),
            ("ts", Json::from_u64(e.cycle)),
            ("pid", Json::from_u64(PID_CORES)),
            ("tid", Json::from_u64(e.core as u64)),
            ("args", obj(args)),
        ]));
    }

    // Version-manager track: GC phases as durations, the rest as instants.
    let mut gc_start: Option<(u64, u32, u32)> = None;
    let last_cycle = mvm.iter().map(|e| e.cycle).max().unwrap_or(0);
    for e in mvm {
        match e.kind {
            MvmEventKind::GcStart { boundary, pending } => {
                gc_start = Some((e.cycle, boundary, pending));
            }
            MvmEventKind::GcEnd { reclaimed } => {
                let (start, boundary, pending) = gc_start.take().unwrap_or((e.cycle, 0, 0));
                events.push(gc_phase(start, e.cycle, boundary, pending, Some(reclaimed)));
            }
            MvmEventKind::WatermarkCrossed { free } => {
                events.push(mvm_instant(e, vec![("free", Json::from_u64(free as u64))]));
            }
            MvmEventKind::FreeListCarve { blocks } => {
                events.push(mvm_instant(
                    e,
                    vec![("blocks", Json::from_u64(blocks as u64))],
                ));
            }
            MvmEventKind::FreeListAlloc { pa, free } => {
                events.push(mvm_instant(
                    e,
                    vec![
                        ("pa", Json::Str(format!("{pa:#x}"))),
                        ("free", Json::from_u64(free as u64)),
                    ],
                ));
            }
            MvmEventKind::RefillTrap => {
                events.push(mvm_instant(e, vec![]));
            }
            MvmEventKind::PoolShrink { dropped } => {
                events.push(mvm_instant(
                    e,
                    vec![("dropped", Json::from_u64(dropped as u64))],
                ));
            }
            MvmEventKind::CarveFailed { attempt } => {
                events.push(mvm_instant(
                    e,
                    vec![("attempt", Json::from_u64(attempt as u64))],
                ));
            }
            MvmEventKind::CompressedOccupancy {
                core,
                root_pa,
                entries,
            } => {
                events.push(mvm_instant(
                    e,
                    vec![
                        ("core", Json::from_u64(core as u64)),
                        ("root_pa", Json::Str(format!("{root_pa:#x}"))),
                        ("entries", Json::from_u64(entries as u64)),
                    ],
                ));
            }
        }
    }
    if let Some((start, boundary, pending)) = gc_start {
        // A phase still open at capture end spans to the last event.
        events.push(gc_phase(
            start,
            last_cycle.max(start),
            boundary,
            pending,
            None,
        ));
    }

    // Dependency-flow arrows: one flow per attributed edge, from the
    // producing core's track at produce time to the consumer's at wake.
    for (id, d) in deps.iter().enumerate().filter(|(_, d)| d.attributed()) {
        let name = clean_name(&format!("dep va={:#x} v{}", d.va, d.resolved));
        for (ph, ts, core, extra) in [
            (
                "s",
                d.produced_at,
                d.producer_core,
                ("task", d.producer_tid),
            ),
            ("f", d.woken_at, d.consumer_core, ("task", d.consumer_tid)),
        ] {
            let mut ev = vec![
                ("name", Json::Str(name.clone())),
                ("cat", Json::Str("dep".into())),
                ("id", Json::from_u64(id as u64)),
                ("ph", Json::Str(ph.into())),
                ("ts", Json::from_u64(ts)),
                ("pid", Json::from_u64(PID_CORES)),
                ("tid", Json::from_u64(u64::from(core))),
                (
                    "args",
                    obj(vec![
                        (extra.0, Json::from_u64(u64::from(extra.1))),
                        ("cause", Json::Str(d.cause.name().into())),
                    ]),
                ),
            ];
            if ph == "f" {
                // Bind the finish to the enclosing slice, per the spec.
                ev.push(("bp", Json::Str("e".into())));
            }
            events.push(obj(ev));
        }
    }

    // Interval-telemetry counter tracks, with a final flush sample at run
    // end repeating the last values so the series span the whole trace.
    for s in samples {
        telemetry_counters(s, s.at, &mut events);
    }
    if let Some(last) = samples.last() {
        if last.at < run_end {
            telemetry_counters(last, run_end, &mut events);
        }
    }

    obj(vec![
        ("displayTimeUnit", Json::Str("ns".into())),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// Builds a Chrome trace-event document from *host* wall-clock spans (the
/// `--host-chrome` export): one process per span category — worker jobs,
/// vacuum passes, cache probes — with the span's `tid` (worker index) as
/// the track. Timestamps are microseconds since the host trace was armed,
/// which Chrome's `ts` field expects natively, so the viewer shows real
/// durations.
pub fn host_trace_doc(spans: &[HostSpan]) -> Json {
    // Stable pid per category, in first-seen order.
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    for s in spans {
        let next = pids.len() as u64;
        pids.entry(s.cat).or_insert(next);
    }
    let mut events: Vec<Json> = Vec::new();
    for (cat, pid) in &pids {
        events.push(obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::from_u64(*pid)),
            ("tid", Json::from_u64(0)),
            ("args", obj(vec![("name", Json::Str((*cat).into()))])),
        ]));
    }
    for s in spans {
        events.push(obj(vec![
            ("name", Json::Str(clean_name(&s.name))),
            ("cat", Json::Str(s.cat.into())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::from_u64(s.start_us)),
            ("dur", Json::from_u64(s.dur_us)),
            ("pid", Json::from_u64(pids[s.cat])),
            ("tid", Json::from_u64(s.tid)),
        ]));
    }
    obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// One sample of a per-core cumulative stalled-cycles counter track.
fn core_stall_counter(core: usize, ts: u64, value: u64) -> Json {
    obj(vec![
        (
            "name",
            Json::Str(clean_name(&format!("core {core} stalled cycles"))),
        ),
        ("ph", Json::Str("C".into())),
        ("ts", Json::from_u64(ts)),
        ("pid", Json::from_u64(PID_CORES)),
        ("tid", Json::from_u64(core as u64)),
        ("args", obj(vec![("value", Json::from_u64(value))])),
    ])
}

/// The five interval-telemetry counter events of one sample, stamped `ts`.
fn telemetry_counters(s: &Sample, ts: u64, events: &mut Vec<Json>) {
    let stall_series: Vec<(&str, Json)> = osim_cpu::StallCause::ALL
        .iter()
        .map(|c| (c.name(), Json::from_u64(s.stalls[c.index()])))
        .collect();
    for (name, args) in [
        (
            "instructions",
            vec![("value", Json::from_u64(s.instructions))],
        ),
        ("stalls", stall_series),
        (
            "free_blocks",
            vec![("value", Json::from_u64(s.free_blocks))],
        ),
        (
            "l1",
            vec![
                ("hits", Json::from_u64(s.l1_hits)),
                ("misses", Json::from_u64(s.l1_misses)),
            ],
        ),
        (
            "l2",
            vec![
                ("hits", Json::from_u64(s.l2_hits)),
                ("misses", Json::from_u64(s.l2_misses)),
            ],
        ),
    ] {
        events.push(obj(vec![
            ("name", Json::Str(clean_name(name))),
            ("ph", Json::Str("C".into())),
            ("ts", Json::from_u64(ts)),
            ("pid", Json::from_u64(PID_TELEMETRY)),
            ("tid", Json::from_u64(0)),
            ("args", obj(args)),
        ]));
    }
}

fn gc_phase(start: u64, end: u64, boundary: u32, pending: u32, reclaimed: Option<u32>) -> Json {
    let mut args = vec![
        ("boundary_task", Json::from_u64(boundary as u64)),
        ("pending_blocks", Json::from_u64(pending as u64)),
    ];
    match reclaimed {
        Some(n) => args.push(("reclaimed_blocks", Json::from_u64(n as u64))),
        None => args.push(("unfinished", Json::Bool(true))),
    }
    obj(vec![
        ("name", Json::Str(clean_name("gc phase"))),
        ("ph", Json::Str("X".into())),
        ("ts", Json::from_u64(start)),
        ("dur", Json::from_u64(end - start)),
        ("pid", Json::from_u64(PID_MVM)),
        ("tid", Json::from_u64(0)),
        ("args", obj(args)),
    ])
}

fn mvm_instant(e: &MvmEvent, args: Vec<(&str, Json)>) -> Json {
    obj(vec![
        ("name", Json::Str(clean_name(e.kind_name()))),
        ("ph", Json::Str("i".into())),
        ("s", Json::Str("g".into())),
        ("ts", Json::from_u64(e.cycle)),
        ("pid", Json::from_u64(PID_MVM)),
        ("tid", Json::from_u64(0)),
        ("args", obj(args)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_cpu::{OpKind, StallCause};
    use osim_mem::Level;

    fn op(core: usize, tid: u32, start: u64, end: u64, stall: Option<StallCause>) -> TraceRecord {
        TraceRecord {
            core,
            tid,
            kind: OpKind::VersionedLoad,
            va: 0x8000,
            version: tid,
            start,
            end,
            stall,
        }
    }

    #[test]
    fn document_shape_is_chrome_loadable() {
        let ops = vec![
            op(0, 1, 10, 60, None),
            op(1, 2, 20, 200, Some(StallCause::MissingVersion)),
        ];
        let mem = vec![MemEvent {
            cycle: 15,
            core: 0,
            pa: 0x8000,
            kind: MemEventKind::Access {
                kind: osim_mem::AccessKind::Read,
                level: Level::Dram,
                latency: 120,
            },
        }];
        let mvm = vec![
            MvmEvent {
                cycle: 30,
                kind: MvmEventKind::GcStart {
                    boundary: 4,
                    pending: 10,
                },
            },
            MvmEvent {
                cycle: 90,
                kind: MvmEventKind::GcEnd { reclaimed: 10 },
            },
        ];
        let doc = chrome_trace(&ops, &mem, &mvm, &[], &[]);
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ns")
        );
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Every event carries the mandatory fields.
        for e in events {
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            if ph != "M" {
                assert!(e.get("ts").and_then(Json::as_u64).is_some());
            }
        }
        // The stalled op names its cause.
        let stalled = events
            .iter()
            .find(|e| e.get("args").and_then(|a| a.get("stall_cause")).is_some())
            .expect("stalled op present");
        assert_eq!(
            stalled
                .get("args")
                .unwrap()
                .get("stall_cause")
                .and_then(Json::as_str),
            Some("missing_version")
        );
        // The GC phase became one duration event.
        let gc = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("gc phase"))
            .expect("gc phase present");
        assert_eq!(gc.get("ts").and_then(Json::as_u64), Some(30));
        assert_eq!(gc.get("dur").and_then(Json::as_u64), Some(60));
        // Task spans cover first..last op of the task.
        let t2 = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("task 2"))
            .unwrap();
        assert_eq!(t2.get("ts").and_then(Json::as_u64), Some(20));
        assert_eq!(t2.get("dur").and_then(Json::as_u64), Some(180));
        assert_eq!(t2.get("pid").and_then(Json::as_u64), Some(PID_TASKS));
    }

    #[test]
    fn counters_and_flows_export() {
        let ops = vec![op(1, 2, 20, 200, Some(StallCause::MissingVersion))];
        let deps = vec![DepEdge {
            va: 0x8000,
            awaited: 2,
            resolved: 2,
            cause: StallCause::MissingVersion,
            consumer_tid: 2,
            consumer_core: 1,
            producer_tid: 1,
            producer_core: 0,
            produced_at: 150,
            blocked_at: 20,
            woken_at: 190,
            waited: 170,
        }];
        let samples = vec![Sample {
            at: 1000,
            instructions: 42,
            stalls: [5, 0, 0, 0],
            free_blocks: 99,
            l1_hits: 7,
            l1_misses: 1,
            l2_hits: 2,
            l2_misses: 1,
        }];
        let doc = chrome_trace(&ops, &[], &[], &deps, &samples);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // The stalled op fed a cumulative per-core counter.
        let ctr = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("core 1 stalled cycles"))
            .expect("stall counter present");
        assert_eq!(ctr.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            ctr.get("args").unwrap().get("value").and_then(Json::as_u64),
            Some(180)
        );
        // The dependency edge became a matched flow pair.
        let flows: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("dep"))
            .collect();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].get("ph").and_then(Json::as_str), Some("s"));
        assert_eq!(flows[0].get("ts").and_then(Json::as_u64), Some(150));
        assert_eq!(flows[0].get("tid").and_then(Json::as_u64), Some(0));
        assert_eq!(flows[1].get("ph").and_then(Json::as_str), Some("f"));
        assert_eq!(flows[1].get("ts").and_then(Json::as_u64), Some(190));
        assert_eq!(flows[1].get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(flows[0].get("id"), flows[1].get("id"));
        // Sample counters landed on the telemetry process.
        let free = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("free_blocks"))
            .expect("free_blocks counter present");
        assert_eq!(free.get("pid").and_then(Json::as_u64), Some(PID_TELEMETRY));
        assert_eq!(
            free.get("args")
                .unwrap()
                .get("value")
                .and_then(Json::as_u64),
            Some(99)
        );
    }

    #[test]
    fn counter_tracks_flush_at_run_end() {
        // The stalled op ends at 200 and the last telemetry sample sits at
        // 1000, but a mem event stretches the run to 5000: every counter
        // series must emit a final sample there or Perfetto renders it
        // truncated.
        let ops = vec![op(1, 2, 20, 200, Some(StallCause::MissingVersion))];
        let mem = vec![MemEvent {
            cycle: 5000,
            core: 0,
            pa: 0x8000,
            kind: MemEventKind::Access {
                kind: osim_mem::AccessKind::Read,
                level: Level::Dram,
                latency: 120,
            },
        }];
        let samples = vec![Sample {
            at: 1000,
            instructions: 42,
            stalls: [5, 0, 0, 0],
            free_blocks: 99,
            l1_hits: 7,
            l1_misses: 1,
            l2_hits: 2,
            l2_misses: 1,
        }];
        let doc = chrome_trace(&ops, &mem, &[], &[], &samples);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let series = |name: &str| -> Vec<u64> {
            events
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .map(|e| e.get("ts").and_then(Json::as_u64).unwrap())
                .collect()
        };
        // Each counter series ends with a flush sample at the run end,
        // repeating the last value.
        let stall_ts = series("core 1 stalled cycles");
        assert_eq!(stall_ts, vec![200, 5000]);
        let free_ts = series("free_blocks");
        assert_eq!(free_ts, vec![1000, 5000]);
        let last_free = events
            .iter()
            .rfind(|e| e.get("name").and_then(Json::as_str) == Some("free_blocks"))
            .unwrap();
        assert_eq!(
            last_free
                .get("args")
                .unwrap()
                .get("value")
                .and_then(Json::as_u64),
            Some(99)
        );
    }

    #[test]
    fn host_trace_doc_groups_categories_into_processes() {
        let spans = vec![
            HostSpan {
                cat: "job",
                name: "fig7 s0".into(),
                tid: 2,
                start_us: 100,
                dur_us: 50,
            },
            HostSpan {
                cat: "vacuum",
                name: "pass".into(),
                tid: 0,
                start_us: 120,
                dur_us: 5,
            },
            HostSpan {
                cat: "job",
                name: "fig8 s1".into(),
                tid: 3,
                start_us: 160,
                dur_us: 40,
            },
        ];
        let doc = host_trace_doc(&spans);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Two categories → two process_name metadata events.
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        // Both job spans share a pid; the vacuum span uses a different one.
        let pid_of = |name: &str| -> u64 {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("pid").and_then(Json::as_u64))
                .unwrap()
        };
        assert_eq!(pid_of("fig7 s0"), pid_of("fig8 s1"));
        assert_ne!(pid_of("fig7 s0"), pid_of("pass"));
        // Span fields survive: the second job span sits on worker track 3.
        let j = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("fig8 s1"))
            .unwrap();
        assert_eq!(j.get("tid").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("ts").and_then(Json::as_u64), Some(160));
        assert_eq!(j.get("dur").and_then(Json::as_u64), Some(40));
    }

    #[test]
    fn names_are_escaped_and_clipped() {
        assert_eq!(clean_name("plain name"), "plain name");
        assert_eq!(clean_name("bad\nname\t\"x\\"), "bad_name__x_");
        let long = "x".repeat(200);
        assert_eq!(clean_name(&long).len(), NAME_MAX);
    }

    #[test]
    fn unfinished_gc_phase_still_exports() {
        let mvm = vec![MvmEvent {
            cycle: 40,
            kind: MvmEventKind::GcStart {
                boundary: 1,
                pending: 2,
            },
        }];
        let doc = chrome_trace(&[], &[], &mvm, &[], &[]);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let gc = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("gc phase"))
            .unwrap();
        assert_eq!(
            gc.get("args").unwrap().get("unfinished"),
            Some(&Json::Bool(true))
        );
    }
}
