//! Chrome trace-event exporter (loadable in Perfetto / `chrome://tracing`).
//!
//! Maps the cross-layer capture onto the trace-event JSON model:
//!
//! * **pid 0 "cores"** — one track per core (`tid` = core id) with each
//!   executed operation as a complete (`ph: "X"`) event, stall cause in
//!   `args`, and memory-hierarchy events as instants on the same track;
//! * **pid 1 "tasks"** — one track per task with its lifetime span (first
//!   to last traced operation);
//! * **pid 2 "version manager"** — GC phases as duration events plus
//!   free-list instants (carves, refill traps, watermark crossings).
//!
//! Timestamps are simulated cycles written into the `ts`/`dur` fields
//! directly; `displayTimeUnit` is set so viewers render them compactly.

use std::collections::BTreeMap;

use osim_cpu::TraceRecord;
use osim_mem::{MemEvent, MemEventKind};
use osim_uarch::{MvmEvent, MvmEventKind};

use crate::json::{obj, Json};

const PID_CORES: u64 = 0;
const PID_TASKS: u64 = 1;
const PID_MVM: u64 = 2;

/// Builds the full Chrome trace-event document from the three capture
/// streams of one traced run.
pub fn chrome_trace(ops: &[TraceRecord], mem: &[MemEvent], mvm: &[MvmEvent]) -> Json {
    let mut events: Vec<Json> = Vec::new();

    for (pid, name) in [
        (PID_CORES, "cores"),
        (PID_TASKS, "tasks"),
        (PID_MVM, "version manager"),
    ] {
        events.push(obj(vec![
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::from_u64(pid)),
            ("tid", Json::from_u64(0)),
            ("args", obj(vec![("name", Json::Str(name.into()))])),
        ]));
    }

    // Per-core operation spans.
    for r in ops {
        let mut args = vec![
            ("task", Json::from_u64(r.tid as u64)),
            ("va", Json::Str(format!("{:#x}", r.va))),
            ("version", Json::from_u64(r.version as u64)),
        ];
        if let Some(cause) = r.stall {
            args.push(("stall_cause", Json::Str(cause.name().into())));
        }
        events.push(obj(vec![
            ("name", Json::Str(r.kind.name().into())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::from_u64(r.start)),
            ("dur", Json::from_u64(r.end - r.start)),
            ("pid", Json::from_u64(PID_CORES)),
            ("tid", Json::from_u64(r.core as u64)),
            ("args", obj(args)),
        ]));
    }

    // Per-task lifetime spans (first traced op to last).
    let mut spans: BTreeMap<u32, (u64, u64, usize)> = BTreeMap::new();
    for r in ops {
        let e = spans.entry(r.tid).or_insert((r.start, r.end, r.core));
        e.0 = e.0.min(r.start);
        e.1 = e.1.max(r.end);
    }
    for (tid, (start, end, core)) in spans {
        events.push(obj(vec![
            ("name", Json::Str(format!("task {tid}"))),
            ("ph", Json::Str("X".into())),
            ("ts", Json::from_u64(start)),
            ("dur", Json::from_u64(end - start)),
            ("pid", Json::from_u64(PID_TASKS)),
            ("tid", Json::from_u64(tid as u64)),
            ("args", obj(vec![("core", Json::from_u64(core as u64))])),
        ]));
    }

    // Memory-hierarchy instants on the issuing (or victim) core's track.
    for e in mem {
        let mut args = vec![("pa", Json::Str(format!("{:#x}", e.pa)))];
        if let MemEventKind::Access { latency, .. } = e.kind {
            args.push(("latency", Json::from_u64(latency)));
        }
        events.push(obj(vec![
            ("name", Json::Str(e.kind_name().into())),
            ("ph", Json::Str("i".into())),
            ("s", Json::Str("t".into())),
            ("ts", Json::from_u64(e.cycle)),
            ("pid", Json::from_u64(PID_CORES)),
            ("tid", Json::from_u64(e.core as u64)),
            ("args", obj(args)),
        ]));
    }

    // Version-manager track: GC phases as durations, the rest as instants.
    let mut gc_start: Option<(u64, u32, u32)> = None;
    let last_cycle = mvm.iter().map(|e| e.cycle).max().unwrap_or(0);
    for e in mvm {
        match e.kind {
            MvmEventKind::GcStart { boundary, pending } => {
                gc_start = Some((e.cycle, boundary, pending));
            }
            MvmEventKind::GcEnd { reclaimed } => {
                let (start, boundary, pending) = gc_start.take().unwrap_or((e.cycle, 0, 0));
                events.push(gc_phase(start, e.cycle, boundary, pending, Some(reclaimed)));
            }
            MvmEventKind::WatermarkCrossed { free } => {
                events.push(mvm_instant(e, vec![("free", Json::from_u64(free as u64))]));
            }
            MvmEventKind::FreeListCarve { blocks } => {
                events.push(mvm_instant(
                    e,
                    vec![("blocks", Json::from_u64(blocks as u64))],
                ));
            }
            MvmEventKind::FreeListAlloc { pa, free } => {
                events.push(mvm_instant(
                    e,
                    vec![
                        ("pa", Json::Str(format!("{pa:#x}"))),
                        ("free", Json::from_u64(free as u64)),
                    ],
                ));
            }
            MvmEventKind::RefillTrap => {
                events.push(mvm_instant(e, vec![]));
            }
            MvmEventKind::PoolShrink { dropped } => {
                events.push(mvm_instant(
                    e,
                    vec![("dropped", Json::from_u64(dropped as u64))],
                ));
            }
            MvmEventKind::CarveFailed { attempt } => {
                events.push(mvm_instant(
                    e,
                    vec![("attempt", Json::from_u64(attempt as u64))],
                ));
            }
        }
    }
    if let Some((start, boundary, pending)) = gc_start {
        // A phase still open at capture end spans to the last event.
        events.push(gc_phase(
            start,
            last_cycle.max(start),
            boundary,
            pending,
            None,
        ));
    }

    obj(vec![
        ("displayTimeUnit", Json::Str("ns".into())),
        ("traceEvents", Json::Arr(events)),
    ])
}

fn gc_phase(start: u64, end: u64, boundary: u32, pending: u32, reclaimed: Option<u32>) -> Json {
    let mut args = vec![
        ("boundary_task", Json::from_u64(boundary as u64)),
        ("pending_blocks", Json::from_u64(pending as u64)),
    ];
    match reclaimed {
        Some(n) => args.push(("reclaimed_blocks", Json::from_u64(n as u64))),
        None => args.push(("unfinished", Json::Bool(true))),
    }
    obj(vec![
        ("name", Json::Str("gc phase".into())),
        ("ph", Json::Str("X".into())),
        ("ts", Json::from_u64(start)),
        ("dur", Json::from_u64(end - start)),
        ("pid", Json::from_u64(PID_MVM)),
        ("tid", Json::from_u64(0)),
        ("args", obj(args)),
    ])
}

fn mvm_instant(e: &MvmEvent, args: Vec<(&str, Json)>) -> Json {
    obj(vec![
        ("name", Json::Str(e.kind_name().into())),
        ("ph", Json::Str("i".into())),
        ("s", Json::Str("g".into())),
        ("ts", Json::from_u64(e.cycle)),
        ("pid", Json::from_u64(PID_MVM)),
        ("tid", Json::from_u64(0)),
        ("args", obj(args)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_cpu::{OpKind, StallCause};
    use osim_mem::Level;

    fn op(core: usize, tid: u32, start: u64, end: u64, stall: Option<StallCause>) -> TraceRecord {
        TraceRecord {
            core,
            tid,
            kind: OpKind::VersionedLoad,
            va: 0x8000,
            version: tid,
            start,
            end,
            stall,
        }
    }

    #[test]
    fn document_shape_is_chrome_loadable() {
        let ops = vec![
            op(0, 1, 10, 60, None),
            op(1, 2, 20, 200, Some(StallCause::MissingVersion)),
        ];
        let mem = vec![MemEvent {
            cycle: 15,
            core: 0,
            pa: 0x8000,
            kind: MemEventKind::Access {
                kind: osim_mem::AccessKind::Read,
                level: Level::Dram,
                latency: 120,
            },
        }];
        let mvm = vec![
            MvmEvent {
                cycle: 30,
                kind: MvmEventKind::GcStart {
                    boundary: 4,
                    pending: 10,
                },
            },
            MvmEvent {
                cycle: 90,
                kind: MvmEventKind::GcEnd { reclaimed: 10 },
            },
        ];
        let doc = chrome_trace(&ops, &mem, &mvm);
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ns")
        );
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Every event carries the mandatory fields.
        for e in events {
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            if ph != "M" {
                assert!(e.get("ts").and_then(Json::as_u64).is_some());
            }
        }
        // The stalled op names its cause.
        let stalled = events
            .iter()
            .find(|e| e.get("args").and_then(|a| a.get("stall_cause")).is_some())
            .expect("stalled op present");
        assert_eq!(
            stalled
                .get("args")
                .unwrap()
                .get("stall_cause")
                .and_then(Json::as_str),
            Some("missing_version")
        );
        // The GC phase became one duration event.
        let gc = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("gc phase"))
            .expect("gc phase present");
        assert_eq!(gc.get("ts").and_then(Json::as_u64), Some(30));
        assert_eq!(gc.get("dur").and_then(Json::as_u64), Some(60));
        // Task spans cover first..last op of the task.
        let t2 = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("task 2"))
            .unwrap();
        assert_eq!(t2.get("ts").and_then(Json::as_u64), Some(20));
        assert_eq!(t2.get("dur").and_then(Json::as_u64), Some(180));
        assert_eq!(t2.get("pid").and_then(Json::as_u64), Some(PID_TASKS));
    }

    #[test]
    fn unfinished_gc_phase_still_exports() {
        let mvm = vec![MvmEvent {
            cycle: 40,
            kind: MvmEventKind::GcStart {
                boundary: 1,
                pending: 2,
            },
        }];
        let doc = chrome_trace(&[], &[], &mvm);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let gc = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("gc phase"))
            .unwrap();
        assert_eq!(
            gc.get("args").unwrap().get("unfinished"),
            Some(&Json::Bool(true))
        );
    }
}
