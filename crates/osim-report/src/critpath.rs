//! Critical-path analysis over captured dependency-flow edges.
//!
//! A run with capture armed ([`osim_cpu::CaptureCfg`]) records one
//! [`DepEdge`] per satisfied blocked versioned load: who produced the
//! awaited version, who consumed it, and when. Those edges form the run's
//! task/version dependency DAG; this module extracts the longest
//! cycle-weighted producer→consumer chain ending at the *last* captured
//! wake and renders it as an exact partition of the `[path start, last
//! wake]` interval into alternating compute and wait segments, each wait
//! attributed to its [`StallCause`].
//!
//! Invariants (property-tested):
//!
//! * segments tile the path exactly — `segments[0].start == start`, each
//!   segment begins where the previous ended, the last ends at `end`;
//! * the segment cycle sum therefore equals the path length;
//! * the path is clamped to the measured window, so its length never
//!   exceeds the run's measured cycles.

use std::collections::BTreeMap;

use osim_cpu::{DepEdge, StallCause};

use crate::json::{obj, Json};

/// Simulated cycle (mirrors `osim_engine::Cycle` without the dependency).
type Cycle = u64;

/// How many top contended structures a report keeps.
const TOP_K: usize = 8;

/// One segment of the critical path: either compute (no cause) or a wait
/// attributed to a stall cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment start cycle (inclusive).
    pub start: Cycle,
    /// Segment end cycle (exclusive); always > `start`.
    pub end: Cycle,
    /// `None` = compute; `Some` = wait, with its attribution.
    pub cause: Option<StallCause>,
    /// Contended structure of a wait segment (0 for compute).
    pub va: u32,
    /// Task accountable for the segment: the waiting consumer of a wait
    /// segment, the task computing toward the next wake otherwise (0 when
    /// unknown — e.g. the leading compute before the first captured edge).
    pub tid: u32,
}

impl Segment {
    /// Cycles covered.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

/// Aggregate wait pressure on one O-structure address, across *all*
/// captured edges (not only the critical chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contender {
    /// Root virtual address of the structure.
    pub va: u32,
    /// Total blocked cycles charged waiting on it.
    pub waited: Cycle,
    /// Edges (satisfied blocked loads) recorded against it.
    pub edges: u64,
    /// The cause with the most waited cycles on this structure.
    pub top_cause: StallCause,
}

/// Wait cycles attributed to one core's consumers — how serialized each
/// core was behind dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreWait {
    /// Core id.
    pub core: u32,
    /// Total blocked cycles consumers on this core accumulated.
    pub waited: Cycle,
    /// Edges whose consumer ran on this core.
    pub edges: u64,
}

/// The extracted critical path plus whole-run contention aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritPath {
    /// Path start cycle (the measured window's start).
    pub start: Cycle,
    /// Path end cycle (the last chained wake, clamped to the window).
    pub end: Cycle,
    /// Exact partition of `[start, end]`; empty when no edge fell inside
    /// the window.
    pub segments: Vec<Segment>,
    /// Top contended structures by waited cycles (at most 8), descending.
    pub contenders: Vec<Contender>,
    /// Per-core serialization (cores with at least one edge), by core id.
    pub per_core: Vec<CoreWait>,
}

impl CritPath {
    /// Path length in cycles.
    pub fn length(&self) -> Cycle {
        self.end - self.start
    }

    /// Cycles of the path spent waiting (vs computing).
    pub fn wait_cycles(&self) -> Cycle {
        self.segments
            .iter()
            .filter(|s| s.cause.is_some())
            .map(Segment::cycles)
            .sum()
    }

    /// Whether anything was captured.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Builds the analysis from captured edges and the measured window
    /// `(start, end)` (both in cycles; edges whose wake falls outside are
    /// ignored, edges that started before the window are clamped to it).
    pub fn build(edges: &[DepEdge], window: (Cycle, Cycle)) -> CritPath {
        let (w_start, w_end) = window;
        let in_window: Vec<&DepEdge> = edges
            .iter()
            .filter(|e| e.woken_at > w_start && e.woken_at <= w_end && e.woken_at > e.blocked_at)
            .collect();

        // ---- chain extraction -------------------------------------------
        // Start from the edge with the last wake and follow producers
        // backwards: the producer of edge E was itself last released by the
        // latest edge whose consumer is E's producer and whose wake
        // precedes E's produce. Unattributed origins end the chain.
        let mut chain: Vec<&DepEdge> = Vec::new();
        let mut cur = in_window
            .iter()
            .copied()
            .max_by_key(|e| (e.woken_at, e.produced_at));
        while let Some(e) = cur {
            chain.push(e);
            if chain.len() > in_window.len() {
                break; // defensive: malformed timestamps cannot loop us
            }
            cur = if e.attributed() {
                in_window
                    .iter()
                    .copied()
                    .filter(|p| {
                        p.consumer_tid == e.producer_tid
                            && p.woken_at <= e.produced_at
                            && p.woken_at < e.woken_at
                    })
                    .max_by_key(|p| (p.woken_at, p.produced_at))
            } else {
                None
            };
        }
        chain.reverse(); // chronological

        // ---- segment tiling ---------------------------------------------
        let mut segments = Vec::new();
        let mut cursor = w_start;
        let mut prev_producer: u32 = 0;
        for e in &chain {
            let wait_start = cursor.max(e.blocked_at.max(w_start));
            if wait_start > cursor {
                segments.push(Segment {
                    start: cursor,
                    end: wait_start,
                    cause: None,
                    va: 0,
                    tid: prev_producer,
                });
            }
            if e.woken_at > wait_start {
                segments.push(Segment {
                    start: wait_start,
                    end: e.woken_at,
                    cause: Some(e.cause),
                    va: e.va,
                    tid: e.consumer_tid,
                });
            }
            cursor = cursor.max(e.woken_at);
            prev_producer = e.consumer_tid;
        }
        let end = cursor;

        // ---- whole-run aggregates ---------------------------------------
        let mut by_va: BTreeMap<u32, (Cycle, u64, [Cycle; 4])> = BTreeMap::new();
        let mut by_core: BTreeMap<u32, (Cycle, u64)> = BTreeMap::new();
        for e in &in_window {
            let v = by_va.entry(e.va).or_insert((0, 0, [0; 4]));
            v.0 += e.waited;
            v.1 += 1;
            v.2[e.cause.index()] += e.waited;
            let c = by_core.entry(e.consumer_core).or_insert((0, 0));
            c.0 += e.waited;
            c.1 += 1;
        }
        let mut contenders: Vec<Contender> = by_va
            .into_iter()
            .map(|(va, (waited, edges, by_cause))| Contender {
                va,
                waited,
                edges,
                top_cause: *StallCause::ALL
                    .iter()
                    .max_by_key(|c| by_cause[c.index()])
                    .unwrap_or(&StallCause::MissingVersion),
            })
            .collect();
        // Descending by waited; va as a deterministic tie-break.
        contenders.sort_by(|a, b| b.waited.cmp(&a.waited).then(a.va.cmp(&b.va)));
        contenders.truncate(TOP_K);
        let per_core = by_core
            .into_iter()
            .map(|(core, (waited, edges))| CoreWait {
                core,
                waited,
                edges,
            })
            .collect();

        CritPath {
            start: w_start,
            end,
            segments,
            contenders,
            per_core,
        }
    }

    /// Serializes to the `critpath` object of a schema-v4 report.
    pub fn to_json(&self) -> Json {
        let segments: Vec<Json> = self
            .segments
            .iter()
            .map(|s| {
                obj(vec![
                    ("start", Json::from_u64(s.start)),
                    ("end", Json::from_u64(s.end)),
                    (
                        "cause",
                        match s.cause {
                            Some(c) => Json::Str(c.name().into()),
                            None => Json::Null,
                        },
                    ),
                    ("va", Json::from_u64(u64::from(s.va))),
                    ("tid", Json::from_u64(u64::from(s.tid))),
                ])
            })
            .collect();
        let contenders: Vec<Json> = self
            .contenders
            .iter()
            .map(|c| {
                obj(vec![
                    ("va", Json::from_u64(u64::from(c.va))),
                    ("waited", Json::from_u64(c.waited)),
                    ("edges", Json::from_u64(c.edges)),
                    ("top_cause", Json::Str(c.top_cause.name().into())),
                ])
            })
            .collect();
        let per_core: Vec<Json> = self
            .per_core
            .iter()
            .map(|c| {
                obj(vec![
                    ("core", Json::from_u64(u64::from(c.core))),
                    ("waited", Json::from_u64(c.waited)),
                    ("edges", Json::from_u64(c.edges)),
                ])
            })
            .collect();
        obj(vec![
            ("start", Json::from_u64(self.start)),
            ("end", Json::from_u64(self.end)),
            ("length", Json::from_u64(self.length())),
            ("wait_cycles", Json::from_u64(self.wait_cycles())),
            ("segments", Json::Arr(segments)),
            ("contenders", Json::Arr(contenders)),
            ("per_core", Json::Arr(per_core)),
        ])
    }

    /// Parses the `critpath` object back (round-trip of [`Self::to_json`]).
    pub fn from_json(v: &Json) -> Result<CritPath, String> {
        let req = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("critpath: missing or non-integer field {k:?}"))
        };
        let req_u32 = |v: &Json, k: &str| -> Result<u32, String> {
            u32::try_from(req(v, k)?).map_err(|_| format!("critpath: field {k:?} exceeds u32"))
        };
        let cause_of = |s: &str| -> Result<StallCause, String> {
            StallCause::from_name(s).ok_or_else(|| format!("critpath: unknown cause {s:?}"))
        };
        let arr = |v: &Json, k: &str| -> Result<Vec<Json>, String> {
            v.get(k)
                .and_then(Json::as_arr)
                .map(<[Json]>::to_vec)
                .ok_or_else(|| format!("critpath: missing or non-array field {k:?}"))
        };
        let segments = arr(v, "segments")?
            .iter()
            .map(|s| {
                Ok(Segment {
                    start: req(s, "start")?,
                    end: req(s, "end")?,
                    cause: match s.get("cause") {
                        None | Some(Json::Null) => None,
                        Some(c) => Some(cause_of(
                            c.as_str().ok_or("critpath: non-string segment cause")?,
                        )?),
                    },
                    va: req_u32(s, "va")?,
                    tid: req_u32(s, "tid")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let contenders = arr(v, "contenders")?
            .iter()
            .map(|c| {
                Ok(Contender {
                    va: req_u32(c, "va")?,
                    waited: req(c, "waited")?,
                    edges: req(c, "edges")?,
                    top_cause: cause_of(
                        c.get("top_cause")
                            .and_then(Json::as_str)
                            .ok_or("critpath: missing top_cause")?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let per_core = arr(v, "per_core")?
            .iter()
            .map(|c| {
                Ok(CoreWait {
                    core: req_u32(c, "core")?,
                    waited: req(c, "waited")?,
                    edges: req(c, "edges")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CritPath {
            start: req(v, "start")?,
            end: req(v, "end")?,
            segments,
            contenders,
            per_core,
        })
    }

    /// Checks the tiling invariants (used by tests and consumers that
    /// ingest externally produced reports).
    pub fn validate(&self) -> Result<(), String> {
        let mut cursor = self.start;
        for (i, s) in self.segments.iter().enumerate() {
            if s.start != cursor {
                return Err(format!(
                    "segment {i} starts at {} but previous ended at {cursor}",
                    s.start
                ));
            }
            if s.end <= s.start {
                return Err(format!("segment {i} is empty or inverted"));
            }
            cursor = s.end;
        }
        if cursor != self.end {
            return Err(format!(
                "segments end at {cursor}, path ends at {}",
                self.end
            ));
        }
        let sum: Cycle = self.segments.iter().map(Segment::cycles).sum();
        if sum != self.length() {
            return Err(format!(
                "segment cycles sum to {sum}, path length is {}",
                self.length()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(
        va: u32,
        consumer_tid: u32,
        producer_tid: u32,
        blocked_at: Cycle,
        produced_at: Cycle,
        woken_at: Cycle,
        cause: StallCause,
    ) -> DepEdge {
        DepEdge {
            va,
            awaited: 1,
            resolved: 1,
            cause,
            consumer_tid,
            consumer_core: consumer_tid % 4,
            producer_tid,
            producer_core: producer_tid % 4,
            produced_at,
            blocked_at,
            woken_at,
            waited: woken_at - blocked_at,
        }
    }

    #[test]
    fn empty_capture_yields_empty_path() {
        let p = CritPath::build(&[], (0, 1000));
        assert!(p.is_empty());
        assert_eq!(p.length(), 0);
        p.validate().unwrap();
    }

    #[test]
    fn chain_follows_producers_and_tiles_exactly() {
        // Task 3 produces for task 2 (woken at 50), task 2 produces for
        // task 1 (woken at 90); an unrelated short wait elsewhere.
        let edges = vec![
            edge(0x100, 2, 3, 10, 40, 50, StallCause::MissingVersion),
            edge(0x100, 1, 2, 60, 80, 90, StallCause::LockedVersion),
            edge(0x200, 5, 6, 5, 6, 8, StallCause::MissingVersion),
        ];
        let p = CritPath::build(&edges, (0, 120));
        p.validate().unwrap();
        assert_eq!(p.start, 0);
        assert_eq!(p.end, 90);
        // compute [0,10) → wait [10,50) → compute [50,60) → wait [60,90).
        assert_eq!(p.segments.len(), 4);
        assert_eq!(p.segments[0].cause, None);
        assert_eq!(p.segments[1].cause, Some(StallCause::MissingVersion));
        assert_eq!(p.segments[1].tid, 2);
        assert_eq!(p.segments[3].cause, Some(StallCause::LockedVersion));
        assert_eq!(p.segments[3].tid, 1);
        assert_eq!(p.wait_cycles(), 40 + 30);
        assert!(p.length() <= 120);
        // Contenders aggregate every edge, hottest first.
        assert_eq!(p.contenders[0].va, 0x100);
        assert_eq!(p.contenders[0].waited, 40 + 30);
        assert_eq!(p.contenders[0].edges, 2);
        assert_eq!(p.contenders[1].va, 0x200);
    }

    #[test]
    fn unattributed_origin_ends_the_chain() {
        let mut e = edge(0x100, 1, 0, 10, 0, 50, StallCause::MissingVersion);
        e.producer_tid = 0;
        let p = CritPath::build(&[e], (0, 100));
        p.validate().unwrap();
        assert_eq!(p.segments.len(), 2); // compute [0,10) + wait [10,50)
        assert_eq!(p.end, 50);
    }

    #[test]
    fn edges_outside_window_are_ignored_and_clamped() {
        let edges = vec![
            // Wake before the window: ignored.
            edge(0x100, 1, 2, 10, 30, 40, StallCause::MissingVersion),
            // Blocked before the window, woken inside: clamped.
            edge(0x100, 3, 4, 80, 140, 150, StallCause::MissingVersion),
        ];
        let p = CritPath::build(&edges, (100, 200));
        p.validate().unwrap();
        assert_eq!(p.start, 100);
        assert_eq!(p.end, 150);
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.segments[0].start, 100);
        assert!(p.length() <= 100);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let edges = vec![
            edge(0x100, 2, 3, 10, 40, 50, StallCause::MissingVersion),
            edge(0x100, 1, 2, 60, 80, 90, StallCause::CoherenceInval),
        ];
        let p = CritPath::build(&edges, (0, 120));
        let back = CritPath::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        let text = p.to_json().to_pretty();
        let reparsed = CritPath::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed, p);
    }
}
