//! Re-export of the shared JSON model.
//!
//! The value model, writer, and parser moved to `osim-metrics::json` so
//! the metrics layer (which sits below this crate) can serialize with the
//! same conventions; this alias keeps the historical `osim_report::json`
//! paths working.

pub use osim_metrics::json::*;
