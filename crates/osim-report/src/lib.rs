//! Serializable run reports and trace exporters for the O-structures
//! simulator.
//!
//! This crate sits above the cpu/mem/uarch layers and below the
//! experiment drivers. It provides:
//!
//! * [`json`] — a small self-contained JSON value model, writer, and
//!   parser (the build environment has no registry access, so serde is
//!   unavailable);
//! * [`SimReport`] — one simulation run's configuration, scale, and the
//!   full stats snapshot from every layer, convertible to/from JSON;
//! * [`chrome`] — a Chrome trace-event (Perfetto-loadable) exporter for
//!   the cross-layer event logs.

pub mod chrome;
pub mod compare;
pub mod critpath;
pub mod json;
mod report;

pub use chrome::{chrome_trace, host_trace_doc};
pub use compare::{compare, Attribution, CounterDelta, HistDelta, ReportDiff};
pub use critpath::{Contender, CoreWait, CritPath, Segment};
pub use report::{
    load_reports, ReportScale, SimReport, TraceCounts, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
