//! Cross-run regression attribution: structural diff of two [`SimReport`]s.
//!
//! `compare` answers "this sweep got slower — where did the cycles go?"
//! without rerunning anything: it diffs every counter, the stall-cause
//! split, the per-core stall distribution, and the v5 latency histograms
//! (per-bucket deltas plus quantile shifts), then ranks the stall causes
//! by how much of the cycle delta they explain.
//!
//! Comparing a report against itself yields a diff for which
//! [`ReportDiff::is_zero`] holds — the CI smoke job relies on this.

use osim_cpu::StallCause;
use osim_metrics::Histogram;

use crate::json::{obj, Json};
use crate::report::SimReport;

/// One scalar counter that differs between the two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Dotted path of the counter (e.g. `cpu.stall_by_cause.missing_version`).
    pub path: String,
    /// Value in run A.
    pub a: u64,
    /// Value in run B.
    pub b: u64,
}

impl CounterDelta {
    /// Signed change B − A.
    pub fn delta(&self) -> i128 {
        self.b as i128 - self.a as i128
    }
}

/// Quantile shifts and bucket-level changes of one named histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDelta {
    /// Histogram name (one of [`osim_cpu::RunHists::NAMES`]).
    pub name: String,
    /// Sample counts (A, B).
    pub count: (u64, u64),
    /// Sample sums (A, B).
    pub sum: (u64, u64),
    /// Median (A, B).
    pub p50: (u64, u64),
    /// 90th percentile (A, B).
    pub p90: (u64, u64),
    /// 99th percentile (A, B).
    pub p99: (u64, u64),
    /// Buckets whose occupancy changed: `(bucket_lo, count_a, count_b)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistDelta {
    fn build(name: &str, a: &Histogram, b: &Histogram) -> Option<HistDelta> {
        if a == b {
            return None;
        }
        let mut buckets = Vec::new();
        let (mut ia, mut ib) = (
            a.nonzero_buckets().peekable(),
            b.nonzero_buckets().peekable(),
        );
        loop {
            let (idx, ca, cb) = match (ia.peek().copied(), ib.peek().copied()) {
                (None, None) => break,
                (Some((i, c)), None) => {
                    ia.next();
                    (i, c, 0)
                }
                (None, Some((i, c))) => {
                    ib.next();
                    (i, 0, c)
                }
                (Some((i, c)), Some((j, d))) => {
                    if i < j {
                        ia.next();
                        (i, c, 0)
                    } else if j < i {
                        ib.next();
                        (j, 0, d)
                    } else {
                        ia.next();
                        ib.next();
                        (i, c, d)
                    }
                }
            };
            if ca != cb {
                buckets.push((Histogram::bucket_bounds(idx).0, ca, cb));
            }
        }
        Some(HistDelta {
            name: name.to_string(),
            count: (a.count(), b.count()),
            sum: (a.sum(), b.sum()),
            p50: (a.quantile(0.50), b.quantile(0.50)),
            p90: (a.quantile(0.90), b.quantile(0.90)),
            p99: (a.quantile(0.99), b.quantile(0.99)),
            buckets,
        })
    }
}

/// One row of the ranked regression-attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Human-readable source (e.g. `stall: missing_version`).
    pub source: String,
    /// Signed cycle change B − A attributed to this source.
    pub delta: i128,
    /// Fraction of the total cycle delta this source explains (0 when the
    /// total delta is zero).
    pub share: f64,
}

/// The full structural diff of two reports.
#[derive(Debug, Clone)]
pub struct ReportDiff {
    /// Experiment of run A (pairing key).
    pub experiment: String,
    /// Benchmark of run A (pairing key).
    pub benchmark: String,
    /// Variant of run A (pairing key).
    pub variant: String,
    /// Configuration fields that differ (`path: a != b` strings). A
    /// non-empty list means the runs are not like-for-like comparable.
    pub config_diffs: Vec<String>,
    /// Measured cycles (A, B).
    pub cycles: (u64, u64),
    /// Counters that changed, in flattening order.
    pub counters: Vec<CounterDelta>,
    /// How many flattened counters were identical.
    pub unchanged_counters: usize,
    /// Histograms that shifted.
    pub hists: Vec<HistDelta>,
    /// Ranked attribution of the cycle delta to stall causes (largest
    /// |delta| first; `compute/other` is the non-stall residual).
    pub attribution: Vec<Attribution>,
    /// Note on which cores carry the stall-cycle change (empty when the
    /// per-core stall distribution did not move).
    pub core_note: String,
}

impl ReportDiff {
    /// True when the two reports were identical in every compared respect.
    pub fn is_zero(&self) -> bool {
        self.cycles.0 == self.cycles.1
            && self.config_diffs.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
    }

    /// Signed cycle change B − A.
    pub fn cycle_delta(&self) -> i128 {
        self.cycles.1 as i128 - self.cycles.0 as i128
    }

    /// Serializes the diff (`osim-compare-v1` conventions; the document
    /// schema string lives in the CLI wrapper that aggregates pairs).
    pub fn to_json(&self) -> Json {
        let counters: Vec<Json> = self
            .counters
            .iter()
            .map(|c| {
                obj(vec![
                    ("path", Json::Str(c.path.clone())),
                    ("a", Json::from_u64(c.a)),
                    ("b", Json::from_u64(c.b)),
                    ("delta", Json::Num(c.delta() as f64)),
                ])
            })
            .collect();
        let hists: Vec<Json> = self
            .hists
            .iter()
            .map(|h| {
                let pair = |(a, b): (u64, u64)| {
                    obj(vec![("a", Json::from_u64(a)), ("b", Json::from_u64(b))])
                };
                let buckets: Vec<Json> = h
                    .buckets
                    .iter()
                    .map(|&(lo, a, b)| {
                        Json::Arr(vec![
                            Json::from_u64(lo),
                            Json::from_u64(a),
                            Json::from_u64(b),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("name", Json::Str(h.name.clone())),
                    ("count", pair(h.count)),
                    ("sum", pair(h.sum)),
                    ("p50", pair(h.p50)),
                    ("p90", pair(h.p90)),
                    ("p99", pair(h.p99)),
                    ("buckets", Json::Arr(buckets)),
                ])
            })
            .collect();
        let attribution: Vec<Json> = self
            .attribution
            .iter()
            .map(|a| {
                obj(vec![
                    ("source", Json::Str(a.source.clone())),
                    ("delta", Json::Num(a.delta as f64)),
                    ("share", Json::Num(a.share)),
                ])
            })
            .collect();
        obj(vec![
            ("experiment", Json::Str(self.experiment.clone())),
            ("benchmark", Json::Str(self.benchmark.clone())),
            ("variant", Json::Str(self.variant.clone())),
            (
                "config_diffs",
                Json::Arr(
                    self.config_diffs
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "cycles",
                obj(vec![
                    ("a", Json::from_u64(self.cycles.0)),
                    ("b", Json::from_u64(self.cycles.1)),
                    ("delta", Json::Num(self.cycle_delta() as f64)),
                ]),
            ),
            ("counters", Json::Arr(counters)),
            (
                "unchanged_counters",
                Json::from_u64(self.unchanged_counters as u64),
            ),
            ("hist", Json::Arr(hists)),
            ("attribution", Json::Arr(attribution)),
            ("zero", Json::Bool(self.is_zero())),
        ])
    }

    /// Renders the human-readable attribution table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let key = format!(
            "{} / {} / {}",
            self.experiment, self.benchmark, self.variant
        );
        if self.is_zero() {
            out.push_str(&format!("{key}: identical (zero deltas)\n"));
            return out;
        }
        let d = self.cycle_delta();
        let pct = if self.cycles.0 > 0 {
            100.0 * d as f64 / self.cycles.0 as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{key}: cycles {} -> {} ({}{}, {:+.2}%)\n",
            self.cycles.0,
            self.cycles.1,
            if d >= 0 { "+" } else { "" },
            d,
            pct
        ));
        for w in &self.config_diffs {
            out.push_str(&format!("  warning: config differs: {w}\n"));
        }
        if !self.attribution.is_empty() && d != 0 {
            out.push_str("  attribution (share of cycle delta):\n");
            for (i, a) in self.attribution.iter().enumerate() {
                out.push_str(&format!(
                    "    {}. {:<24} {:+10}  {:5.1}%\n",
                    i + 1,
                    a.source,
                    a.delta,
                    a.share * 100.0
                ));
            }
            if !self.core_note.is_empty() {
                out.push_str(&format!("    {}\n", self.core_note));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!(
                "  counters: {} changed, {} unchanged (top by |delta|):\n",
                self.counters.len(),
                self.unchanged_counters
            ));
            let mut ranked: Vec<&CounterDelta> = self.counters.iter().collect();
            ranked.sort_by_key(|c| std::cmp::Reverse(c.delta().unsigned_abs()));
            for c in ranked.iter().take(10) {
                out.push_str(&format!("    {:<40} {:+}\n", c.path, c.delta()));
            }
        }
        if !self.hists.is_empty() {
            out.push_str(&format!("  histograms: {} shifted:\n", self.hists.len()));
            for h in &self.hists {
                out.push_str(&format!(
                    "    {:<16} p50 {} -> {}, p90 {} -> {}, p99 {} -> {} (count {:+})\n",
                    h.name,
                    h.p50.0,
                    h.p50.1,
                    h.p90.0,
                    h.p90.1,
                    h.p99.0,
                    h.p99.1,
                    h.count.1 as i128 - h.count.0 as i128
                ));
            }
        }
        out
    }
}

/// Flattens every scalar counter of a report into `(dotted path, value)`
/// rows, in a stable order shared by both sides of a diff.
fn flat_counters(r: &SimReport) -> Vec<(String, u64)> {
    let mut out = Vec::with_capacity(64);
    let mut push = |path: String, v: u64| out.push((path, v));
    push("cycles".into(), r.cycles);
    let c = &r.cpu;
    push("cpu.instructions".into(), c.instructions);
    push("cpu.loads".into(), c.loads);
    push("cpu.stores".into(), c.stores);
    push("cpu.cas_ops".into(), c.cas_ops);
    push("cpu.versioned_ops".into(), c.versioned_ops);
    push("cpu.versioned_loads".into(), c.versioned_loads);
    push(
        "cpu.versioned_loads_stalled".into(),
        c.versioned_loads_stalled,
    );
    push("cpu.root_loads".into(), c.root_loads);
    push("cpu.root_loads_stalled".into(), c.root_loads_stalled);
    push("cpu.stall_cycles".into(), c.stall_cycles);
    for cause in StallCause::ALL {
        push(
            format!("cpu.stall_by_cause.{}", cause.name()),
            c.stall_by_cause[cause.index()],
        );
    }
    push("cpu.tasks_run".into(), c.tasks_run);
    for (i, pc) in c.per_core.iter().enumerate() {
        push(format!("cpu.per_core.{i}.instructions"), pc.instructions);
        push(format!("cpu.per_core.{i}.versioned_ops"), pc.versioned_ops);
        push(format!("cpu.per_core.{i}.stall_cycles"), pc.stall_cycles);
        push(format!("cpu.per_core.{i}.tasks_run"), pc.tasks_run);
    }
    let m = &r.mem;
    for (name, per_core) in [
        ("l1_read_hits", &m.l1_read_hits),
        ("l1_read_misses", &m.l1_read_misses),
        ("l1_write_hits", &m.l1_write_hits),
        ("l1_write_misses", &m.l1_write_misses),
    ] {
        for (i, &v) in per_core.iter().enumerate() {
            push(format!("mem.{name}.{i}"), v);
        }
    }
    push("mem.l2_hits".into(), m.l2_hits);
    push("mem.l2_misses".into(), m.l2_misses);
    push("mem.remote_forwards".into(), m.remote_forwards);
    push("mem.invalidations".into(), m.invalidations);
    push("mem.upgrades".into(), m.upgrades);
    push("mem.back_invalidations".into(), m.back_invalidations);
    push("mem.compressed_hits".into(), m.compressed_hits);
    push("mem.compressed_misses".into(), m.compressed_misses);
    push(
        "mem.compressed_coherence_drops".into(),
        m.compressed_coherence_drops,
    );
    let o = &r.ostats;
    push("mvm.direct_hits".into(), o.direct_hits);
    push("mvm.full_lookups".into(), o.full_lookups);
    push("mvm.walk_reads".into(), o.walk_reads);
    push("mvm.stores".into(), o.stores);
    push("mvm.allocated_blocks".into(), o.allocated_blocks);
    push("mvm.reclaimed_blocks".into(), o.reclaimed_blocks);
    push("mvm.gc_phases".into(), o.gc_phases);
    push("mvm.refill_traps".into(), o.refill_traps);
    push("mvm.refill_retries".into(), o.refill_retries);
    push("mvm.recovered_allocations".into(), o.recovered_allocations);
    push(
        "mvm.injected_carve_failures".into(),
        o.injected_carve_failures,
    );
    push(
        "mvm.injected_jitter_cycles".into(),
        o.injected_jitter_cycles,
    );
    push(
        "mvm.injected_coherence_delay_cycles".into(),
        o.injected_coherence_delay_cycles,
    );
    push("mvm.forced_gc_attempts".into(), o.forced_gc_attempts);
    push("mvm.pool_shrink_events".into(), o.pool_shrink_events);
    push(
        "engine.events_dispatched".into(),
        r.engine.events_dispatched,
    );
    push("engine.stale_events".into(), r.engine.stale_events);
    out
}

/// Configuration fields that must match for a like-for-like comparison.
fn config_diffs(a: &SimReport, b: &SimReport) -> Vec<String> {
    let mut out = Vec::new();
    let mut check = |name: &str, x: String, y: String| {
        if x != y {
            out.push(format!("{name}: {x} != {y}"));
        }
    };
    check("cores", a.cores.to_string(), b.cores.to_string());
    check("l1_bytes", a.l1_bytes.to_string(), b.l1_bytes.to_string());
    check("l2_bytes", a.l2_bytes.to_string(), b.l2_bytes.to_string());
    check(
        "dram_latency",
        a.dram_latency.to_string(),
        b.dram_latency.to_string(),
    );
    check(
        "trap_latency",
        a.trap_latency.to_string(),
        b.trap_latency.to_string(),
    );
    check(
        "gc_watermark",
        a.gc_watermark.to_string(),
        b.gc_watermark.to_string(),
    );
    check(
        "versioned_extra_latency",
        a.versioned_extra_latency.to_string(),
        b.versioned_extra_latency.to_string(),
    );
    check(
        "sorted_insertion",
        a.sorted_insertion.to_string(),
        b.sorted_insertion.to_string(),
    );
    check(
        "inject",
        format!("{:?}", a.inject),
        format!("{:?}", b.inject),
    );
    out
}

/// Diffs two reports. `a` is the baseline, `b` the candidate; deltas read
/// B − A throughout.
pub fn compare(a: &SimReport, b: &SimReport) -> ReportDiff {
    let fa = flat_counters(a);
    let fb = flat_counters(b);
    let mut counters = Vec::new();
    let mut unchanged = 0usize;
    // Per-core vectors can differ in length across configs; align by path.
    let mut i = 0;
    let mut j = 0;
    while i < fa.len() || j < fb.len() {
        match (fa.get(i), fb.get(j)) {
            (Some((pa, va)), Some((pb, vb))) if pa == pb => {
                if va != vb {
                    counters.push(CounterDelta {
                        path: pa.clone(),
                        a: *va,
                        b: *vb,
                    });
                } else {
                    unchanged += 1;
                }
                i += 1;
                j += 1;
            }
            (Some((pa, va)), Some((pb, _))) => {
                // Paths diverge (different per-core lengths): emit the A-only
                // row as a disappearance, resynchronizing on B's path.
                if fb.iter().any(|(p, _)| p == pa) {
                    counters.push(CounterDelta {
                        path: pb.clone(),
                        a: 0,
                        b: fb[j].1,
                    });
                    j += 1;
                } else {
                    counters.push(CounterDelta {
                        path: pa.clone(),
                        a: *va,
                        b: 0,
                    });
                    i += 1;
                }
            }
            (Some((pa, va)), None) => {
                counters.push(CounterDelta {
                    path: pa.clone(),
                    a: *va,
                    b: 0,
                });
                i += 1;
            }
            (None, Some((pb, vb))) => {
                counters.push(CounterDelta {
                    path: pb.clone(),
                    a: 0,
                    b: *vb,
                });
                j += 1;
            }
            (None, None) => break,
        }
    }

    let hists: Vec<HistDelta> = a
        .hists
        .named()
        .iter()
        .zip(b.hists.named().iter())
        .filter_map(|((name, ha), (_, hb))| HistDelta::build(name, ha, hb))
        .collect();

    let cycle_delta = b.cycles as i128 - a.cycles as i128;
    let mut attribution = Vec::new();
    let mut stall_delta_total: i128 = 0;
    for cause in StallCause::ALL {
        let da = a.cpu.stall_by_cause[cause.index()] as i128;
        let db = b.cpu.stall_by_cause[cause.index()] as i128;
        let delta = db - da;
        stall_delta_total += delta;
        if delta != 0 {
            attribution.push(Attribution {
                source: format!("stall: {}", cause.name()),
                delta,
                share: share_of(delta, cycle_delta),
            });
        }
    }
    let residual = cycle_delta - stall_delta_total;
    if residual != 0 {
        attribution.push(Attribution {
            source: "compute/other".to_string(),
            delta: residual,
            share: share_of(residual, cycle_delta),
        });
    }
    attribution.sort_by_key(|x| std::cmp::Reverse(x.delta.unsigned_abs()));

    // Which cores carry the stall change? Name the carriers when the
    // per-core distribution moved.
    let mut core_note = String::new();
    if a.cpu.per_core.len() == b.cpu.per_core.len() && stall_delta_total != 0 {
        let per_core: Vec<(usize, i128)> = a
            .cpu
            .per_core
            .iter()
            .zip(b.cpu.per_core.iter())
            .enumerate()
            .map(|(k, (x, y))| (k, y.stall_cycles as i128 - x.stall_cycles as i128))
            .filter(|&(_, d)| d != 0)
            .collect();
        if !per_core.is_empty() {
            let moved: i128 = per_core.iter().map(|&(_, d)| d.abs()).sum();
            let mut ranked = per_core.clone();
            ranked.sort_by_key(|&(_, d)| std::cmp::Reverse(d.abs()));
            let mut covered: i128 = 0;
            let mut carriers: Vec<usize> = Vec::new();
            for &(k, d) in &ranked {
                carriers.push(k);
                covered += d.abs();
                if covered * 10 >= moved * 9 {
                    break;
                }
            }
            carriers.sort_unstable();
            let list: Vec<String> = carriers.iter().map(|k| k.to_string()).collect();
            core_note = format!(
                "cores {} carry {:.0}% of the stall-cycle movement",
                list.join(","),
                100.0 * covered as f64 / moved as f64
            );
        }
    }

    ReportDiff {
        experiment: a.experiment.clone(),
        benchmark: a.benchmark.clone(),
        variant: a.variant.clone(),
        config_diffs: config_diffs(a, b),
        cycles: (a.cycles, b.cycles),
        counters,
        unchanged_counters: unchanged,
        hists,
        attribution,
        core_note,
    }
}

fn share_of(delta: i128, total: i128) -> f64 {
    if total == 0 {
        0.0
    } else {
        delta as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::tests_support::sample_report;

    #[test]
    fn self_compare_is_zero() {
        let r = sample_report();
        let d = compare(&r, &r);
        assert!(d.is_zero(), "self-diff not zero: {:?}", d.counters);
        assert!(d.counters.is_empty());
        assert!(d.hists.is_empty());
        assert!(d.attribution.is_empty());
        assert!(d.render_text().contains("identical"));
        assert_eq!(d.to_json().get("zero"), Some(&Json::Bool(true)));
    }

    #[test]
    fn cycle_regression_is_attributed_to_stall_cause() {
        let a = sample_report();
        let mut b = sample_report();
        // +1000 cycles, 900 of them missing-version stall on core 1.
        b.cycles += 1000;
        b.cpu.stall_cycles += 900;
        b.cpu.stall_by_cause[StallCause::MissingVersion.index()] += 900;
        b.cpu.per_core[1].stall_cycles += 900;
        b.hists.version_walk.record(4096);
        let d = compare(&a, &b);
        assert!(!d.is_zero());
        assert_eq!(d.cycle_delta(), 1000);
        assert_eq!(d.attribution[0].source, "stall: missing_version");
        assert_eq!(d.attribution[0].delta, 900);
        assert!((d.attribution[0].share - 0.9).abs() < 1e-9);
        // The 100 unexplained cycles land in the residual row.
        assert!(d
            .attribution
            .iter()
            .any(|x| x.source == "compute/other" && x.delta == 100));
        assert!(d.core_note.contains("cores 1"));
        let text = d.render_text();
        assert!(text.contains("missing_version"), "{text}");
        assert!(text.contains("+900"), "{text}");
        // The histogram shift is reported with its quantiles.
        assert_eq!(d.hists.len(), 1);
        assert_eq!(d.hists[0].name, "version_walk");
        assert_eq!(d.hists[0].count.1, d.hists[0].count.0 + 1);
    }

    #[test]
    fn config_mismatch_is_flagged() {
        let a = sample_report();
        let mut b = sample_report();
        b.dram_latency += 10;
        let d = compare(&a, &b);
        assert!(!d.is_zero());
        assert_eq!(d.config_diffs.len(), 1);
        assert!(d.config_diffs[0].contains("dram_latency"));
        assert!(d.render_text().contains("config differs"));
    }

    #[test]
    fn json_form_carries_ranked_attribution() {
        let a = sample_report();
        let mut b = sample_report();
        b.cycles += 500;
        b.cpu.stall_cycles += 500;
        b.cpu.stall_by_cause[StallCause::FreeListGc.index()] += 500;
        let d = compare(&a, &b);
        let v = d.to_json();
        let attr = v.get("attribution").and_then(Json::as_arr).unwrap();
        assert_eq!(attr.len(), 1);
        assert_eq!(
            attr[0].get("source").and_then(Json::as_str),
            Some("stall: freelist_gc")
        );
        assert_eq!(v.get("zero"), Some(&Json::Bool(false)));
    }
}
