//! The unified run report: one simulation's configuration, workload
//! scale, and the statistics snapshot of every layer, as one JSON value.

use osim_cpu::{CoreStats, CpuStats, EngineStats, MachineCfg, RunHists, Sample, StallCause};
use osim_mem::MemStats;
use osim_uarch::OStats;

use crate::critpath::CritPath;
use crate::json::{obj, Json};

/// Schema version stamped into every report (bump on breaking layout
/// changes so downstream consumers can dispatch).
///
/// v2: `config.inject` (canonical fault-injection spec, `null` when no
/// faults were injected) and seven resilience counters under `mvm`
/// (`refill_retries`, `recovered_allocations`, `injected_carve_failures`,
/// `injected_jitter_cycles`, `injected_coherence_delay_cycles`,
/// `forced_gc_attempts`, `pool_shrink_events`).
///
/// v3: `engine` object (`events_dispatched`, `stale_events`) — the
/// engine's dispatch-loop counters. These are scheduler-invariant (every
/// [`osim_cpu::SchedulerKind`] pops the same event multiset in the same
/// order), so they are safe to include in byte-compared reports.
///
/// v4: causal observability. `timeseries` — interval-telemetry samples
/// (`[]` when the sampler was off): per-epoch instruction/stall deltas by
/// cause, L1/L2 hit counters, and the MVM free-block gauge. `critpath` —
/// the dependency critical-path analysis (`null` when edge capture was
/// off): the longest producer→consumer chain as an exact compute/wait
/// segment tiling, top contended structures, and per-core serialization.
/// `trace` grows six counters for the new capture rings (`pt_walks`/
/// `pt_dropped`, `dep_edges`/`dep_dropped`, `samples`/`samples_dropped`).
///
/// v5: fleet telemetry. `hist` — eight log-bucketed latency histograms
/// spanning every layer (`gate_wait`, `wake_fanout`, `version_walk`,
/// `gc_pause`, `l1_access`, `l2_access`, `coherence_delay`,
/// `run_quantum`), each serialized sparsely as
/// `{count, sum, min, max, buckets: [[index, n], ...]}`. All record
/// simulated-cycle quantities, so the section is deterministic and
/// scheduler-invariant. The reader is forward-compatible: v4 documents
/// still parse, with `hist` defaulting to empty.
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest schema version [`SimReport::from_json`] still accepts. v4
/// reports predate the `hist` section; everything else is unchanged.
pub const MIN_SCHEMA_VERSION: u64 = 4;

/// Workload sizes of the run (mirrors the experiment harness's scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportScale {
    /// Initial elements of the "small" irregular configurations.
    pub small: u64,
    /// Initial elements of the "large" irregular configurations.
    pub large: u64,
    /// Measured operations per irregular run.
    pub ops: u64,
    /// Matrix dimension.
    pub mat_n: u64,
    /// Levenshtein string length.
    pub lev_len: u64,
}

/// Capture-buffer occupancy for a traced run (absent when tracing was
/// off — the counters would all read zero and be indistinguishable from
/// "nothing happened").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounts {
    /// Per-operation records retained.
    pub records: u64,
    /// Per-operation records overwritten (ring-buffer wrap).
    pub dropped: u64,
    /// Memory-hierarchy events retained.
    pub mem_events: u64,
    /// Memory-hierarchy events overwritten.
    pub mem_dropped: u64,
    /// Version-manager events retained.
    pub mvm_events: u64,
    /// Version-manager events overwritten.
    pub mvm_dropped: u64,
    /// Page-table walk events retained.
    pub pt_walks: u64,
    /// Page-table walk events overwritten.
    pub pt_dropped: u64,
    /// Dependency-flow edges retained.
    pub dep_edges: u64,
    /// Dependency-flow edges overwritten.
    pub dep_dropped: u64,
    /// Interval-telemetry samples retained.
    pub samples: u64,
    /// Interval-telemetry samples overwritten.
    pub samples_dropped: u64,
}

/// One simulation run, serializable to/from JSON.
///
/// Aggregates [`CpuStats`], [`MemStats`], and [`OStats`] with the machine
/// configuration and workload scale that produced them, so a single file
/// regenerates every number a figure row quotes.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Which experiment produced this run (e.g. `fig6`).
    pub experiment: String,
    /// Benchmark name (e.g. `Linked list`).
    pub benchmark: String,
    /// Variant within the experiment (e.g. `versioned`, `unversioned`).
    pub variant: String,
    /// Cores simulated.
    pub cores: u64,
    /// L1 data cache size in bytes.
    pub l1_bytes: u64,
    /// Shared L2 size in bytes.
    pub l2_bytes: u64,
    /// DRAM latency in cycles.
    pub dram_latency: u64,
    /// OS free-list refill trap cost in cycles.
    pub trap_latency: u64,
    /// GC watermark in blocks (0 = collector disabled).
    pub gc_watermark: u64,
    /// Extra latency injected into every versioned op (Figure 10 knob).
    pub versioned_extra_latency: u64,
    /// Whether version lists keep sorted insertion (§IV-F ablation).
    pub sorted_insertion: bool,
    /// Canonical fault-injection spec the run was configured with
    /// ([`osim_uarch::FaultPlan::to_spec`]); `None` when no faults were
    /// injected.
    pub inject: Option<String>,
    /// Workload scale.
    pub scale: ReportScale,
    /// Measured cycles of the run.
    pub cycles: u64,
    /// Core-side statistics.
    pub cpu: CpuStats,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// O-structure manager statistics.
    pub ostats: OStats,
    /// Engine dispatch-loop counters (scheduler-invariant).
    pub engine: EngineStats,
    /// Latency histograms from every layer (empty on reports parsed from
    /// pre-v5 documents).
    pub hists: RunHists,
    /// Trace-buffer occupancy, when tracing was enabled.
    pub trace: Option<TraceCounts>,
    /// Interval-telemetry samples (empty when the sampler was off).
    pub timeseries: Vec<Sample>,
    /// Dependency critical-path analysis, when edge capture was armed.
    pub critpath: Option<CritPath>,
}

impl SimReport {
    /// Builds a report from a run's outcome and the machine configuration
    /// that produced it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        experiment: &str,
        benchmark: &str,
        variant: &str,
        cfg: &MachineCfg,
        scale: ReportScale,
        cycles: u64,
        cpu: CpuStats,
        mem: MemStats,
        ostats: OStats,
        engine: EngineStats,
        hists: RunHists,
    ) -> Self {
        SimReport {
            experiment: experiment.to_string(),
            benchmark: benchmark.to_string(),
            variant: variant.to_string(),
            cores: cfg.cores as u64,
            l1_bytes: cfg.hier.l1.size_bytes as u64,
            l2_bytes: cfg.hier.l2.size_bytes as u64,
            dram_latency: cfg.hier.dram_latency,
            trap_latency: cfg.omgr.trap_latency,
            gc_watermark: cfg.omgr.gc.watermark as u64,
            versioned_extra_latency: cfg.omgr.versioned_extra_latency,
            sorted_insertion: cfg.omgr.sorted_insertion,
            inject: cfg.omgr.fault_plan.map(|p| p.to_spec()),
            scale,
            cycles,
            cpu,
            mem,
            ostats,
            engine,
            hists,
            trace: None,
            timeseries: Vec::new(),
            critpath: None,
        }
    }

    /// Checks the report's internal invariants — most importantly that the
    /// per-cause stall split sums to the aggregate exactly.
    pub fn validate(&self) -> Result<(), String> {
        let by_cause: u64 = self.cpu.stall_by_cause.iter().sum();
        if by_cause != self.cpu.stall_cycles {
            return Err(format!(
                "stall_by_cause sums to {by_cause}, stall_cycles is {}",
                self.cpu.stall_cycles
            ));
        }
        if self.cpu.versioned_loads_stalled > self.cpu.versioned_loads {
            return Err("more stalled versioned loads than versioned loads".into());
        }
        if !self.cpu.per_core.is_empty() {
            let per_core: u64 = self.cpu.per_core.iter().map(|c| c.stall_cycles).sum();
            if per_core != self.cpu.stall_cycles {
                return Err(format!(
                    "per-core stall cycles sum to {per_core}, aggregate is {}",
                    self.cpu.stall_cycles
                ));
            }
        }
        Ok(())
    }

    /// Serializes the report to a JSON value.
    pub fn to_json(&self) -> Json {
        let cause_members: Vec<(&str, Json)> = StallCause::ALL
            .iter()
            .map(|c| (c.name(), Json::from_u64(self.cpu.stall_by_cause[c.index()])))
            .collect();
        let per_core: Vec<Json> = self
            .cpu
            .per_core
            .iter()
            .map(|c| {
                obj(vec![
                    ("instructions", Json::from_u64(c.instructions)),
                    ("versioned_ops", Json::from_u64(c.versioned_ops)),
                    ("stall_cycles", Json::from_u64(c.stall_cycles)),
                    ("tasks_run", Json::from_u64(c.tasks_run)),
                ])
            })
            .collect();
        let cpu = obj(vec![
            ("instructions", Json::from_u64(self.cpu.instructions)),
            ("loads", Json::from_u64(self.cpu.loads)),
            ("stores", Json::from_u64(self.cpu.stores)),
            ("cas_ops", Json::from_u64(self.cpu.cas_ops)),
            ("versioned_ops", Json::from_u64(self.cpu.versioned_ops)),
            ("versioned_loads", Json::from_u64(self.cpu.versioned_loads)),
            (
                "versioned_loads_stalled",
                Json::from_u64(self.cpu.versioned_loads_stalled),
            ),
            ("root_loads", Json::from_u64(self.cpu.root_loads)),
            (
                "root_loads_stalled",
                Json::from_u64(self.cpu.root_loads_stalled),
            ),
            ("stall_cycles", Json::from_u64(self.cpu.stall_cycles)),
            ("stall_by_cause", obj(cause_members)),
            ("tasks_run", Json::from_u64(self.cpu.tasks_run)),
            ("per_core", Json::Arr(per_core)),
            ("stall_imbalance", Json::Num(self.cpu.stall_imbalance())),
            ("work_imbalance", Json::Num(self.cpu.work_imbalance())),
        ]);
        let mem = obj(vec![
            ("l1_read_hits", u64_arr(&self.mem.l1_read_hits)),
            ("l1_read_misses", u64_arr(&self.mem.l1_read_misses)),
            ("l1_write_hits", u64_arr(&self.mem.l1_write_hits)),
            ("l1_write_misses", u64_arr(&self.mem.l1_write_misses)),
            ("l2_hits", Json::from_u64(self.mem.l2_hits)),
            ("l2_misses", Json::from_u64(self.mem.l2_misses)),
            ("remote_forwards", Json::from_u64(self.mem.remote_forwards)),
            ("invalidations", Json::from_u64(self.mem.invalidations)),
            ("upgrades", Json::from_u64(self.mem.upgrades)),
            (
                "back_invalidations",
                Json::from_u64(self.mem.back_invalidations),
            ),
            ("compressed_hits", Json::from_u64(self.mem.compressed_hits)),
            (
                "compressed_misses",
                Json::from_u64(self.mem.compressed_misses),
            ),
            (
                "compressed_coherence_drops",
                Json::from_u64(self.mem.compressed_coherence_drops),
            ),
            ("l1_read_hit_rate", Json::Num(self.mem.l1_read_hit_rate())),
            ("l1_hit_rate", Json::Num(self.mem.l1_hit_rate())),
        ]);
        let mvm = obj(vec![
            ("direct_hits", Json::from_u64(self.ostats.direct_hits)),
            ("full_lookups", Json::from_u64(self.ostats.full_lookups)),
            ("walk_reads", Json::from_u64(self.ostats.walk_reads)),
            ("stores", Json::from_u64(self.ostats.stores)),
            (
                "allocated_blocks",
                Json::from_u64(self.ostats.allocated_blocks),
            ),
            (
                "reclaimed_blocks",
                Json::from_u64(self.ostats.reclaimed_blocks),
            ),
            ("gc_phases", Json::from_u64(self.ostats.gc_phases)),
            ("refill_traps", Json::from_u64(self.ostats.refill_traps)),
            ("refill_retries", Json::from_u64(self.ostats.refill_retries)),
            (
                "recovered_allocations",
                Json::from_u64(self.ostats.recovered_allocations),
            ),
            (
                "injected_carve_failures",
                Json::from_u64(self.ostats.injected_carve_failures),
            ),
            (
                "injected_jitter_cycles",
                Json::from_u64(self.ostats.injected_jitter_cycles),
            ),
            (
                "injected_coherence_delay_cycles",
                Json::from_u64(self.ostats.injected_coherence_delay_cycles),
            ),
            (
                "forced_gc_attempts",
                Json::from_u64(self.ostats.forced_gc_attempts),
            ),
            (
                "pool_shrink_events",
                Json::from_u64(self.ostats.pool_shrink_events),
            ),
        ]);
        let engine = obj(vec![
            (
                "events_dispatched",
                Json::from_u64(self.engine.events_dispatched),
            ),
            ("stale_events", Json::from_u64(self.engine.stale_events)),
        ]);
        let hist = Json::Obj(
            self.hists
                .named()
                .iter()
                .map(|(name, h)| (name.to_string(), h.to_json()))
                .collect(),
        );
        let trace = match &self.trace {
            None => Json::Null,
            Some(t) => obj(vec![
                ("records", Json::from_u64(t.records)),
                ("dropped", Json::from_u64(t.dropped)),
                ("mem_events", Json::from_u64(t.mem_events)),
                ("mem_dropped", Json::from_u64(t.mem_dropped)),
                ("mvm_events", Json::from_u64(t.mvm_events)),
                ("mvm_dropped", Json::from_u64(t.mvm_dropped)),
                ("pt_walks", Json::from_u64(t.pt_walks)),
                ("pt_dropped", Json::from_u64(t.pt_dropped)),
                ("dep_edges", Json::from_u64(t.dep_edges)),
                ("dep_dropped", Json::from_u64(t.dep_dropped)),
                ("samples", Json::from_u64(t.samples)),
                ("samples_dropped", Json::from_u64(t.samples_dropped)),
            ]),
        };
        let timeseries: Vec<Json> = self
            .timeseries
            .iter()
            .map(|s| {
                let stalls: Vec<(&str, Json)> = StallCause::ALL
                    .iter()
                    .map(|c| (c.name(), Json::from_u64(s.stalls[c.index()])))
                    .collect();
                obj(vec![
                    ("at", Json::from_u64(s.at)),
                    ("instructions", Json::from_u64(s.instructions)),
                    ("stalls", obj(stalls)),
                    ("free_blocks", Json::from_u64(s.free_blocks)),
                    ("l1_hits", Json::from_u64(s.l1_hits)),
                    ("l1_misses", Json::from_u64(s.l1_misses)),
                    ("l2_hits", Json::from_u64(s.l2_hits)),
                    ("l2_misses", Json::from_u64(s.l2_misses)),
                ])
            })
            .collect();
        let critpath = match &self.critpath {
            None => Json::Null,
            Some(p) => p.to_json(),
        };
        obj(vec![
            ("schema", Json::from_u64(SCHEMA_VERSION)),
            ("experiment", Json::Str(self.experiment.clone())),
            ("benchmark", Json::Str(self.benchmark.clone())),
            ("variant", Json::Str(self.variant.clone())),
            (
                "config",
                obj(vec![
                    ("cores", Json::from_u64(self.cores)),
                    ("l1_bytes", Json::from_u64(self.l1_bytes)),
                    ("l2_bytes", Json::from_u64(self.l2_bytes)),
                    ("dram_latency", Json::from_u64(self.dram_latency)),
                    ("trap_latency", Json::from_u64(self.trap_latency)),
                    ("gc_watermark", Json::from_u64(self.gc_watermark)),
                    (
                        "versioned_extra_latency",
                        Json::from_u64(self.versioned_extra_latency),
                    ),
                    ("sorted_insertion", Json::Bool(self.sorted_insertion)),
                    (
                        "inject",
                        match &self.inject {
                            Some(spec) => Json::Str(spec.clone()),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            (
                "scale",
                obj(vec![
                    ("small", Json::from_u64(self.scale.small)),
                    ("large", Json::from_u64(self.scale.large)),
                    ("ops", Json::from_u64(self.scale.ops)),
                    ("mat_n", Json::from_u64(self.scale.mat_n)),
                    ("lev_len", Json::from_u64(self.scale.lev_len)),
                ]),
            ),
            ("cycles", Json::from_u64(self.cycles)),
            ("cpu", cpu),
            ("mem", mem),
            ("mvm", mvm),
            ("engine", engine),
            ("hist", hist),
            ("trace", trace),
            ("timeseries", Json::Arr(timeseries)),
            ("critpath", critpath),
        ])
    }

    /// Parses a report back from its JSON form, verifying the schema.
    pub fn from_json(v: &Json) -> Result<SimReport, String> {
        let schema = req_u64(v, "schema")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(format!("unsupported schema version {schema}"));
        }
        let config = v.get("config").ok_or("missing config")?;
        let scale_v = v.get("scale").ok_or("missing scale")?;
        let cpu_v = v.get("cpu").ok_or("missing cpu")?;
        let mem_v = v.get("mem").ok_or("missing mem")?;
        let mvm_v = v.get("mvm").ok_or("missing mvm")?;
        let engine_v = v.get("engine").ok_or("missing engine")?;

        let mut stall_by_cause = [0u64; 4];
        let causes = cpu_v
            .get("stall_by_cause")
            .ok_or("missing stall_by_cause")?;
        for cause in StallCause::ALL {
            stall_by_cause[cause.index()] = req_u64(causes, cause.name())?;
        }
        let per_core = match cpu_v.get("per_core").and_then(Json::as_arr) {
            Some(rows) => rows
                .iter()
                .map(|r| {
                    Ok(CoreStats {
                        instructions: req_u64(r, "instructions")?,
                        versioned_ops: req_u64(r, "versioned_ops")?,
                        stall_cycles: req_u64(r, "stall_cycles")?,
                        tasks_run: req_u64(r, "tasks_run")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        let cpu = CpuStats {
            instructions: req_u64(cpu_v, "instructions")?,
            loads: req_u64(cpu_v, "loads")?,
            stores: req_u64(cpu_v, "stores")?,
            cas_ops: req_u64(cpu_v, "cas_ops")?,
            versioned_ops: req_u64(cpu_v, "versioned_ops")?,
            versioned_loads: req_u64(cpu_v, "versioned_loads")?,
            versioned_loads_stalled: req_u64(cpu_v, "versioned_loads_stalled")?,
            root_loads: req_u64(cpu_v, "root_loads")?,
            root_loads_stalled: req_u64(cpu_v, "root_loads_stalled")?,
            stall_cycles: req_u64(cpu_v, "stall_cycles")?,
            stall_by_cause,
            tasks_run: req_u64(cpu_v, "tasks_run")?,
            per_core,
        };
        let mem = MemStats {
            l1_read_hits: req_u64_arr(mem_v, "l1_read_hits")?,
            l1_read_misses: req_u64_arr(mem_v, "l1_read_misses")?,
            l1_write_hits: req_u64_arr(mem_v, "l1_write_hits")?,
            l1_write_misses: req_u64_arr(mem_v, "l1_write_misses")?,
            l2_hits: req_u64(mem_v, "l2_hits")?,
            l2_misses: req_u64(mem_v, "l2_misses")?,
            remote_forwards: req_u64(mem_v, "remote_forwards")?,
            invalidations: req_u64(mem_v, "invalidations")?,
            upgrades: req_u64(mem_v, "upgrades")?,
            back_invalidations: req_u64(mem_v, "back_invalidations")?,
            compressed_hits: req_u64(mem_v, "compressed_hits")?,
            compressed_misses: req_u64(mem_v, "compressed_misses")?,
            compressed_coherence_drops: req_u64(mem_v, "compressed_coherence_drops")?,
        };
        let ostats = OStats {
            direct_hits: req_u64(mvm_v, "direct_hits")?,
            full_lookups: req_u64(mvm_v, "full_lookups")?,
            walk_reads: req_u64(mvm_v, "walk_reads")?,
            stores: req_u64(mvm_v, "stores")?,
            allocated_blocks: req_u64(mvm_v, "allocated_blocks")?,
            reclaimed_blocks: req_u64(mvm_v, "reclaimed_blocks")?,
            gc_phases: req_u64(mvm_v, "gc_phases")?,
            refill_traps: req_u64(mvm_v, "refill_traps")?,
            refill_retries: req_u64(mvm_v, "refill_retries")?,
            recovered_allocations: req_u64(mvm_v, "recovered_allocations")?,
            injected_carve_failures: req_u64(mvm_v, "injected_carve_failures")?,
            injected_jitter_cycles: req_u64(mvm_v, "injected_jitter_cycles")?,
            injected_coherence_delay_cycles: req_u64(mvm_v, "injected_coherence_delay_cycles")?,
            forced_gc_attempts: req_u64(mvm_v, "forced_gc_attempts")?,
            pool_shrink_events: req_u64(mvm_v, "pool_shrink_events")?,
        };
        let engine = EngineStats {
            events_dispatched: req_u64(engine_v, "events_dispatched")?,
            stale_events: req_u64(engine_v, "stale_events")?,
        };
        let mut hists = RunHists::default();
        // v4 documents have no `hist` section; leave the default (empty).
        if let Some(Json::Obj(members)) = v.get("hist") {
            for (name, hv) in members {
                let slot = hists
                    .by_name_mut(name)
                    .ok_or_else(|| format!("unknown histogram {name:?}"))?;
                *slot = osim_metrics::Histogram::from_json(hv)
                    .map_err(|e| format!("histogram {name:?}: {e}"))?;
            }
        } else if schema >= 5 {
            return Err("missing hist".into());
        }
        let trace = match v.get("trace") {
            None | Some(Json::Null) => None,
            Some(t) => Some(TraceCounts {
                records: req_u64(t, "records")?,
                dropped: req_u64(t, "dropped")?,
                mem_events: req_u64(t, "mem_events")?,
                mem_dropped: req_u64(t, "mem_dropped")?,
                mvm_events: req_u64(t, "mvm_events")?,
                mvm_dropped: req_u64(t, "mvm_dropped")?,
                pt_walks: req_u64(t, "pt_walks")?,
                pt_dropped: req_u64(t, "pt_dropped")?,
                dep_edges: req_u64(t, "dep_edges")?,
                dep_dropped: req_u64(t, "dep_dropped")?,
                samples: req_u64(t, "samples")?,
                samples_dropped: req_u64(t, "samples_dropped")?,
            }),
        };
        let timeseries = match v.get("timeseries").and_then(Json::as_arr) {
            None => Vec::new(),
            Some(rows) => rows
                .iter()
                .map(|s| {
                    let stalls_v = s.get("stalls").ok_or("missing sample stalls")?;
                    let mut stalls = [0u64; 4];
                    for cause in StallCause::ALL {
                        stalls[cause.index()] = req_u64(stalls_v, cause.name())?;
                    }
                    Ok(Sample {
                        at: req_u64(s, "at")?,
                        instructions: req_u64(s, "instructions")?,
                        stalls,
                        free_blocks: req_u64(s, "free_blocks")?,
                        l1_hits: req_u64(s, "l1_hits")?,
                        l1_misses: req_u64(s, "l1_misses")?,
                        l2_hits: req_u64(s, "l2_hits")?,
                        l2_misses: req_u64(s, "l2_misses")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        let critpath = match v.get("critpath") {
            None | Some(Json::Null) => None,
            Some(p) => Some(CritPath::from_json(p)?),
        };
        Ok(SimReport {
            experiment: req_str(v, "experiment")?,
            benchmark: req_str(v, "benchmark")?,
            variant: req_str(v, "variant")?,
            cores: req_u64(config, "cores")?,
            l1_bytes: req_u64(config, "l1_bytes")?,
            l2_bytes: req_u64(config, "l2_bytes")?,
            dram_latency: req_u64(config, "dram_latency")?,
            trap_latency: req_u64(config, "trap_latency")?,
            gc_watermark: req_u64(config, "gc_watermark")?,
            versioned_extra_latency: req_u64(config, "versioned_extra_latency")?,
            sorted_insertion: config
                .get("sorted_insertion")
                .and_then(Json::as_bool)
                .ok_or("missing sorted_insertion")?,
            inject: match config.get("inject") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_str().ok_or("non-string field \"inject\"")?.to_string()),
            },
            scale: ReportScale {
                small: req_u64(scale_v, "small")?,
                large: req_u64(scale_v, "large")?,
                ops: req_u64(scale_v, "ops")?,
                mat_n: req_u64(scale_v, "mat_n")?,
                lev_len: req_u64(scale_v, "lev_len")?,
            },
            cycles: req_u64(v, "cycles")?,
            cpu,
            mem,
            ostats,
            engine,
            hists,
            trace,
            timeseries,
            critpath,
        })
    }
}

/// Parses every report in a `--json` document: a single [`SimReport`]
/// object or the array form the experiments binary writes.
///
/// Total on any input: truncated files, corrupt JSON, hostile nesting and
/// well-formed-but-not-a-report documents all come back as a typed message
/// naming the offending element — never a panic. Both the `compare`
/// subcommand and external tooling load report files through this.
pub fn load_reports(text: &str) -> Result<Vec<SimReport>, String> {
    let doc = crate::json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let elems: Vec<&Json> = match &doc {
        Json::Arr(items) => items.iter().collect(),
        other => vec![other],
    };
    elems
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            SimReport::from_json(v).map_err(|e| format!("element {i}: not a report: {e}"))
        })
        .collect()
}

fn u64_arr(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::from_u64(v)).collect())
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn req_u64_arr(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array field {key:?}"))?;
    arr.iter()
        .map(|e| {
            e.as_u64()
                .ok_or_else(|| format!("non-integer element in {key:?}"))
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// A fully-populated report for serialization and diff tests.
    pub(crate) fn sample_report() -> SimReport {
        let mut cpu = CpuStats::for_cores(2);
        cpu.instructions = 1000;
        cpu.versioned_ops = 64;
        cpu.versioned_loads = 40;
        cpu.versioned_loads_stalled = 8;
        cpu.charge_stall(0, StallCause::MissingVersion, 120);
        cpu.charge_stall(1, StallCause::FreeListGc, 500);
        let mem = MemStats {
            l1_read_hits: vec![10, 20],
            l1_read_misses: vec![1, 2],
            l1_write_hits: vec![3, 4],
            l1_write_misses: vec![0, 0],
            l2_hits: 3,
            ..MemStats::default()
        };
        let ostats = OStats {
            stores: 12,
            gc_phases: 1,
            ..OStats::default()
        };
        let mut hists = RunHists::default();
        hists.gate_wait.record(120);
        hists.gate_wait.record(500);
        hists.wake_fanout.record(0);
        hists.version_walk.record(48);
        hists.l1_access.record(1);
        hists.run_quantum.record(4096);
        let mut r = SimReport::new(
            "fig6",
            "Linked list",
            "versioned",
            &MachineCfg::paper(2),
            ReportScale {
                small: 200,
                large: 1000,
                ops: 256,
                mat_n: 28,
                lev_len: 96,
            },
            123_456,
            cpu,
            mem,
            ostats,
            EngineStats {
                events_dispatched: 4096,
                stale_events: 3,
            },
            hists,
        );
        r.trace = Some(TraceCounts {
            records: 99,
            dropped: 5,
            mem_events: 50,
            mem_dropped: 0,
            mvm_events: 7,
            mvm_dropped: 0,
            pt_walks: 31,
            pt_dropped: 2,
            dep_edges: 12,
            dep_dropped: 1,
            samples: 4,
            samples_dropped: 0,
        });
        r.timeseries = vec![
            Sample {
                at: 1000,
                instructions: 480,
                stalls: [120, 0, 0, 0],
                free_blocks: 200,
                l1_hits: 300,
                l1_misses: 12,
                l2_hits: 8,
                l2_misses: 4,
            },
            Sample {
                at: 2000,
                instructions: 520,
                stalls: [0, 0, 0, 500],
                free_blocks: 150,
                l1_hits: 310,
                l1_misses: 9,
                l2_hits: 6,
                l2_misses: 3,
            },
        ];
        r.critpath = Some(CritPath::build(
            &[osim_cpu::DepEdge {
                va: 0x8000,
                awaited: 3,
                resolved: 3,
                cause: StallCause::MissingVersion,
                consumer_tid: 2,
                consumer_core: 1,
                producer_tid: 1,
                producer_core: 0,
                produced_at: 400,
                blocked_at: 100,
                woken_at: 420,
                waited: 320,
            }],
            (0, 123_456),
        ));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> SimReport {
        tests_support::sample_report()
    }

    #[test]
    fn round_trips_through_json_text() {
        let r = sample();
        r.validate().unwrap();
        let text = r.to_json().to_pretty();
        let back = SimReport::from_json(&parse(&text).unwrap()).unwrap();
        back.validate().unwrap();
        assert_eq!(back.experiment, "fig6");
        assert_eq!(back.benchmark, "Linked list");
        assert_eq!(back.cores, 2);
        assert_eq!(back.cycles, 123_456);
        assert_eq!(back.cpu.stall_cycles, r.cpu.stall_cycles);
        assert_eq!(back.cpu.stall_by_cause, r.cpu.stall_by_cause);
        assert_eq!(back.cpu.per_core.len(), 2);
        assert_eq!(back.cpu.per_core[1].stall_cycles, 500);
        assert_eq!(back.mem.l1_read_hits, vec![10, 20]);
        assert_eq!(back.ostats.stores, 12);
        assert_eq!(back.engine.events_dispatched, 4096);
        assert_eq!(back.engine.stale_events, 3);
        assert_eq!(back.hists, r.hists);
        assert_eq!(back.hists.gate_wait.count(), 2);
        assert_eq!(back.trace, r.trace);
        assert_eq!(back.timeseries, r.timeseries);
        assert_eq!(back.critpath, r.critpath);
    }

    #[test]
    fn absent_trace_serializes_as_null() {
        let mut r = sample();
        r.trace = None;
        let v = r.to_json();
        assert_eq!(v.get("trace"), Some(&Json::Null));
        let back = SimReport::from_json(&v).unwrap();
        assert_eq!(back.trace, None);
    }

    #[test]
    fn validate_rejects_broken_stall_split() {
        let mut r = sample();
        r.cpu.stall_by_cause[0] += 1;
        assert!(r.validate().unwrap_err().contains("stall_by_cause"));
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let r = sample();
        let mut v = r.to_json();
        if let Json::Obj(members) = &mut v {
            members[0].1 = Json::from_u64(99);
        }
        assert!(SimReport::from_json(&v)
            .unwrap_err()
            .contains("schema version"));
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let v = parse("{\"schema\": 4}").unwrap();
        assert!(SimReport::from_json(&v).is_err());
    }

    #[test]
    fn parses_v4_fixture_without_hist_section() {
        // A schema-4 document produced by the pre-v5 binary: must still
        // load, with the histograms defaulting to empty.
        let text = include_str!("../tests/fixtures/report_v4.json");
        let back = SimReport::from_json(&parse(text).unwrap()).unwrap();
        back.validate().unwrap();
        assert_eq!(back.experiment, "fig7");
        assert_eq!(back.hists, RunHists::default());
        assert!(back.hists.gate_wait.is_empty());
        // Re-serializing stamps the current schema and an empty hist
        // section, which must round-trip.
        let v = back.to_json();
        assert_eq!(v.get("schema").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        let again = SimReport::from_json(&v).unwrap();
        assert_eq!(again.hists, back.hists);
    }

    #[test]
    fn v5_document_missing_hist_is_rejected() {
        let r = sample();
        let mut v = r.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "hist");
        }
        assert!(SimReport::from_json(&v).unwrap_err().contains("hist"));
    }

    #[test]
    fn absent_capture_serializes_as_empty_and_null() {
        let mut r = sample();
        r.timeseries.clear();
        r.critpath = None;
        let v = r.to_json();
        assert_eq!(
            v.get("timeseries").and_then(Json::as_arr).map(<[_]>::len),
            Some(0)
        );
        assert_eq!(v.get("critpath"), Some(&Json::Null));
        let back = SimReport::from_json(&v).unwrap();
        assert!(back.timeseries.is_empty());
        assert_eq!(back.critpath, None);
    }
}
