//! Flight recorder: a background sampler that snapshots a shared
//! [`Registry`] into a fixed-size ring of time windows.
//!
//! The recorder separates the *recording side* from the *sampling side*.
//! Instrumented layers record into their own process-global atomics and
//! pre-allocated histograms — nothing on that side allocates, so the
//! counting-allocator guard in `osim-engine` stays satisfiable with a
//! recorder armed. Only the sampler thread (and explicit [`FlightRecorder::
//! sample_now`] calls) builds `Registry` values: each tick it invokes the
//! collector closure, flattens the result with [`Registry::samples`], and
//! diffs it against the previous snapshot to produce one [`Window`] of
//! per-window deltas (counters and histogram count/sum advance; gauges are
//! point-in-time). The ring keeps the most recent `capacity` windows; the
//! `/window` route of `osim-serve` renders them as JSON.

use crate::json::{obj, Json};
use crate::registry::{Registry, Sample};
use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{Builder, JoinHandle};
use std::time::{Duration, Instant};

/// Builds a point-in-time registry for one sample. Shared with
/// `osim-serve`, so a scrape and a flight-recorder tick see the same
/// sources.
pub type Collector = Arc<dyn Fn(&mut Registry) + Send + Sync>;

/// Sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlightCfg {
    /// Time between automatic samples.
    pub interval: Duration,
    /// Number of windows retained in the ring.
    pub capacity: usize,
}

impl Default for FlightCfg {
    fn default() -> Self {
        FlightCfg {
            interval: Duration::from_millis(250),
            capacity: 120,
        }
    }
}

/// One completed sampling window: the change in every metric between two
/// consecutive snapshots.
#[derive(Debug, Clone)]
pub struct Window {
    /// Monotone window number (0 is the first window after recorder start).
    pub seq: u64,
    /// Window end, milliseconds since recorder start.
    pub at_ms: u64,
    /// Window length in milliseconds (wall clock, so an explicit
    /// `sample_now` produces a shorter window than the configured interval).
    pub dur_ms: u64,
    /// Counter deltas over the window.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at the window end.
    pub gauges: Vec<(String, f64)>,
    /// Histogram `(id, count delta, sum delta)` over the window.
    pub hists: Vec<(String, u64, u64)>,
}

struct State {
    prev: Vec<(String, Sample)>,
    prev_at: Duration,
    ring: VecDeque<Window>,
    seq: u64,
}

/// Sampler lifecycle flags, guarded by the mutex the sampler parks on so
/// `stop()` can never fire its wakeup into the gap between the sampler's
/// flag check and its condvar wait.
struct Park {
    ready: bool,
    stop: bool,
}

struct Shared {
    collect: Collector,
    state: Mutex<State>,
    park: Mutex<Park>,
    wake: Condvar,
    start: Instant,
    cfg: FlightCfg,
}

impl Shared {
    /// Takes one sample: collect outside the state lock, then fold the
    /// delta window into the ring under it.
    fn sample(&self) {
        let mut reg = Registry::new();
        (self.collect)(&mut reg);
        let cur = reg.samples();
        let now = self.start.elapsed();
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (id, sample) in &cur {
            let prev = st.prev.iter().find(|(pid, _)| pid == id).map(|(_, s)| *s);
            match (*sample, prev) {
                (Sample::Counter(c), Some(Sample::Counter(p))) => {
                    counters.push((id.clone(), c.saturating_sub(p)));
                }
                (Sample::Counter(c), _) => counters.push((id.clone(), c)),
                (Sample::Gauge(g), _) => gauges.push((id.clone(), g)),
                (Sample::Hist { count, sum }, Some(Sample::Hist { count: pc, sum: ps })) => {
                    hists.push((id.clone(), count.saturating_sub(pc), sum.saturating_sub(ps)));
                }
                (Sample::Hist { count, sum }, _) => hists.push((id.clone(), count, sum)),
            }
        }
        let window = Window {
            seq: st.seq,
            at_ms: now.as_millis() as u64,
            dur_ms: now.saturating_sub(st.prev_at).as_millis() as u64,
            counters,
            gauges,
            hists,
        };
        st.seq += 1;
        st.prev = cur;
        st.prev_at = now;
        if st.ring.len() >= self.cfg.capacity.max(1) {
            st.ring.pop_front();
        }
        st.ring.push_back(window);
    }
}

/// Handle to a running flight recorder. Dropping it stops and joins the
/// sampler thread.
pub struct FlightRecorder {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl FlightRecorder {
    /// Spawns the sampler thread. The first window materializes one
    /// `cfg.interval` after start (or at the first [`sample_now`]).
    ///
    /// Returns only after the sampler has finished its own thread startup
    /// and parked: past this point the thread allocates nothing until a
    /// sample fires, so callers (like the zero-alloc guard) can rely on a
    /// quiescent recorder.
    ///
    /// [`sample_now`]: FlightRecorder::sample_now
    pub fn start(cfg: FlightCfg, collect: Collector) -> io::Result<FlightRecorder> {
        let shared = Arc::new(Shared {
            collect,
            state: Mutex::new(State {
                prev: Vec::new(),
                prev_at: Duration::ZERO,
                ring: VecDeque::new(),
                seq: 0,
            }),
            park: Mutex::new(Park {
                ready: false,
                stop: false,
            }),
            wake: Condvar::new(),
            start: Instant::now(),
            cfg,
        });
        let worker = Arc::clone(&shared);
        let thread = Builder::new()
            .name("osim-flight".to_string())
            .spawn(move || {
                let mut park = worker.park.lock().unwrap_or_else(PoisonError::into_inner);
                park.ready = true;
                worker.wake.notify_all();
                loop {
                    if park.stop {
                        break;
                    }
                    park = worker
                        .wake
                        .wait_timeout(park, worker.cfg.interval)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                    if park.stop {
                        break;
                    }
                    drop(park);
                    worker.sample();
                    park = worker.park.lock().unwrap_or_else(PoisonError::into_inner);
                }
            })?;
        let mut park = shared.park.lock().unwrap_or_else(PoisonError::into_inner);
        while !park.ready {
            park = shared
                .wake
                .wait(park)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(park);
        Ok(FlightRecorder {
            shared,
            thread: Some(thread),
        })
    }

    /// Takes a sample immediately on the calling thread (in addition to
    /// the periodic ones). Used by tests and by scrape handlers that want
    /// a fresh window.
    pub fn sample_now(&self) {
        self.shared.sample();
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        let st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.ring.iter().cloned().collect()
    }

    /// JSON document for the `/window` route.
    pub fn window_json(&self) -> Json {
        let windows: Vec<Json> = self
            .windows()
            .into_iter()
            .map(|w| {
                let counters = w
                    .counters
                    .into_iter()
                    .map(|(id, d)| (id, Json::from_u64(d)))
                    .collect();
                let gauges = w
                    .gauges
                    .into_iter()
                    .map(|(id, g)| (id, Json::Num(g)))
                    .collect();
                let hists = w
                    .hists
                    .into_iter()
                    .map(|(id, count, sum)| {
                        (
                            id,
                            obj(vec![
                                ("count", Json::from_u64(count)),
                                ("sum", Json::from_u64(sum)),
                            ]),
                        )
                    })
                    .collect();
                obj(vec![
                    ("seq", Json::from_u64(w.seq)),
                    ("at_ms", Json::from_u64(w.at_ms)),
                    ("dur_ms", Json::from_u64(w.dur_ms)),
                    ("counters", Json::Obj(counters)),
                    ("gauges", Json::Obj(gauges)),
                    ("hists", Json::Obj(hists)),
                ])
            })
            .collect();
        obj(vec![
            ("schema", Json::Str("osim-flight-v1".to_string())),
            (
                "interval_ms",
                Json::from_u64(self.shared.cfg.interval.as_millis() as u64),
            ),
            ("capacity", Json::from_u64(self.shared.cfg.capacity as u64)),
            ("windows", Json::Arr(windows)),
        ])
    }

    /// Stops and joins the sampler thread. Idempotent; also runs on drop.
    pub fn stop(&mut self) {
        {
            let mut park = self
                .shared
                .park
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            park.stop = true;
            self.shared.wake.notify_all();
        }
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn recorder_with_counter(ticks: Arc<AtomicU64>) -> FlightRecorder {
        let collect: Collector = Arc::new(move |reg: &mut Registry| {
            reg.counter_add("ticks_total", &[], ticks.load(Ordering::Relaxed));
            reg.gauge_set("depth", &[], 2.5);
            reg.hist_record("lat_us", &[], 7);
        });
        let cfg = FlightCfg {
            interval: Duration::from_secs(3600),
            capacity: 4,
        };
        FlightRecorder::start(cfg, collect).expect("spawn flight recorder")
    }

    #[test]
    fn windows_carry_counter_deltas_and_gauge_values() {
        let ticks = Arc::new(AtomicU64::new(0));
        let rec = recorder_with_counter(Arc::clone(&ticks));
        ticks.store(5, Ordering::Relaxed);
        rec.sample_now();
        ticks.store(12, Ordering::Relaxed);
        rec.sample_now();
        let windows = rec.windows();
        assert_eq!(windows.len(), 2);
        // First window sees the absolute value (no previous snapshot);
        // the second sees only the advance.
        assert_eq!(windows[0].counters, vec![("ticks_total".to_string(), 5)]);
        assert_eq!(windows[1].counters, vec![("ticks_total".to_string(), 7)]);
        assert_eq!(windows[1].gauges, vec![("depth".to_string(), 2.5)]);
        // The collector records one fresh histogram sample per tick, so
        // each window's count delta is relative to the previous snapshot's
        // count of 1 — zero advance — which still lists the family.
        assert_eq!(windows[1].hists, vec![("lat_us".to_string(), 0, 0)]);
        assert_eq!(windows[1].seq, 1);
    }

    #[test]
    fn ring_is_bounded_by_capacity() {
        let ticks = Arc::new(AtomicU64::new(0));
        let rec = recorder_with_counter(Arc::clone(&ticks));
        for _ in 0..10 {
            rec.sample_now();
        }
        let windows = rec.windows();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows.last().map(|w| w.seq), Some(9));
    }

    #[test]
    fn window_json_shape() {
        let ticks = Arc::new(AtomicU64::new(3));
        let rec = recorder_with_counter(ticks);
        rec.sample_now();
        let doc = rec.window_json();
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("osim-flight-v1")
        );
        let windows = doc.get("windows").and_then(|w| w.as_arr()).expect("arr");
        assert_eq!(windows.len(), 1);
        let counters = windows[0]
            .get("counters")
            .and_then(|c| c.as_obj())
            .expect("obj");
        assert_eq!(counters[0].0, "ticks_total");
    }

    #[test]
    fn stop_returns_promptly_despite_hour_long_interval() {
        // The stop flag lives under the park mutex, so the wakeup cannot
        // land in the gap between the sampler's flag check and its wait;
        // with a 3600s interval, a lost wakeup would hang this test.
        let ticks = Arc::new(AtomicU64::new(0));
        let mut rec = recorder_with_counter(ticks);
        let t0 = Instant::now();
        rec.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "stop lost its wakeup"
        );
        rec.stop(); // idempotent
    }

    #[test]
    fn background_thread_samples_on_its_own() {
        let ticks = Arc::new(AtomicU64::new(1));
        let collect: Collector = {
            let ticks = Arc::clone(&ticks);
            Arc::new(move |reg: &mut Registry| {
                reg.counter_add("ticks_total", &[], ticks.load(Ordering::Relaxed));
            })
        };
        let cfg = FlightCfg {
            interval: Duration::from_millis(10),
            capacity: 64,
        };
        let rec = FlightRecorder::start(cfg, collect).expect("spawn flight recorder");
        let deadline = Instant::now() + Duration::from_secs(10);
        while rec.windows().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!rec.windows().is_empty(), "sampler never ticked");
    }
}
