//! Fixed-size log-bucketed latency histograms.
//!
//! The layout is HDR-style log-linear: values `0..16` land in their own
//! exact bucket, and every octave above that is split into 8 sub-buckets,
//! so relative error is bounded by 12.5% everywhere while the whole
//! structure stays a fixed 256-slot array. [`Histogram::record`] is a few
//! integer operations and never allocates, which keeps it safe inside the
//! simulator's zero-allocation dispatch loop (guarded by the `zero_alloc`
//! test in `osim-engine`).
//!
//! Merging adds bucket counts element-wise, so it is lossless at bucket
//! resolution, commutative, and associative — per-worker histograms from a
//! parallel sweep fold into the same result regardless of merge order.

use crate::json::{obj, Json};

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 256;

/// Values below this get an exact bucket each.
const LINEAR_MAX: u64 = 16;

/// Sub-buckets per octave above the linear range.
const SUB: usize = 8;

/// A fixed-size log-linear histogram of `u64` samples (simulated cycles,
/// counts, or host microseconds — the unit is the caller's convention).
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

impl Eq for Histogram {}

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let top = 63 - v.leading_zeros(); // >= 4
        let idx = LINEAR_MAX as usize
            + (top as usize - 4) * SUB
            + ((v >> (top - 3)) as usize & (SUB - 1));
        idx.min(BUCKETS - 1)
    }
}

/// Lowest value mapping to bucket `idx`.
fn bucket_lo(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let oct = (idx - LINEAR_MAX as usize) / SUB;
        let sub = (idx - LINEAR_MAX as usize) % SUB;
        (SUB as u64 + sub as u64) << (oct + 1)
    }
}

/// Highest value mapping to bucket `idx` (the last bucket saturates).
fn bucket_hi(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else if idx >= BUCKETS - 1 {
        u64::MAX
    } else {
        bucket_lo(idx + 1) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped to the
    /// recorded max. Monotone in `q`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_hi(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self` (bucket-wise; lossless at
    /// bucket resolution, commutative and associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Non-empty `(bucket_index, count)` pairs in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Inclusive `[lo, hi]` value range of bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        (bucket_lo(idx), bucket_hi(idx))
    }

    /// Serializes as `{count, sum, min, max, buckets: [[idx, n], ...]}`
    /// with only non-empty buckets listed.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .nonzero_buckets()
            .map(|(i, c)| Json::Arr(vec![Json::from_u64(i as u64), Json::from_u64(c)]))
            .collect();
        obj(vec![
            ("count", Json::from_u64(self.count)),
            ("sum", Json::from_u64(self.sum.min((1 << 53) - 1))),
            ("min", Json::from_u64(self.min())),
            ("max", Json::from_u64(self.max)),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Parses the [`to_json`](Self::to_json) shape back.
    pub fn from_json(v: &Json) -> Result<Histogram, String> {
        let req = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram field '{key}' missing or not a u64"))
        };
        let mut h = Histogram::new();
        h.count = req("count")?;
        h.sum = req("sum")?;
        h.max = req("max")?;
        h.min = if h.count == 0 { u64::MAX } else { req("min")? };
        let buckets = v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram field 'buckets' missing or not an array")?;
        for pair in buckets {
            let pair = pair.as_arr().ok_or("histogram bucket is not a pair")?;
            let (idx, n) = match pair {
                [i, n] => (
                    i.as_u64().ok_or("bucket index not a u64")?,
                    n.as_u64().ok_or("bucket count not a u64")?,
                ),
                _ => return Err("histogram bucket is not a pair".into()),
            };
            if idx as usize >= BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            h.counts[idx as usize] = n;
        }
        let total: u64 = h.counts.iter().sum();
        if total != h.count {
            return Err(format!(
                "histogram bucket counts sum to {total}, header says {}",
                h.count
            ));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
            assert_eq!(bucket_hi(v as usize), v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_bounds_partition_the_value_space() {
        // Every bucket's lo..=hi must map back to that bucket, and
        // consecutive buckets must tile without gaps.
        for idx in 0..BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx, "lo of {idx}");
            assert_eq!(bucket_index(hi), idx, "hi of {idx}");
            assert_eq!(bucket_lo(idx + 1), hi + 1, "tiling at {idx}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 1000, 123_456, 1 << 30] {
            let (lo, hi) = Histogram::bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            assert!(
                (hi - lo) as f64 / lo as f64 <= 0.125 + 1e-9,
                "bucket at {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 7, 100, 100, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(1.0), 5000);
        let mut prev = 0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            assert!(q >= prev, "quantile dipped at {i}");
            prev = q;
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let xs = [0u64, 1, 15, 16, 17, 999, 1 << 40];
        let ys = [5u64, 5, 123_456_789];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &v in &xs {
            a.record(v);
            all.record(v);
        }
        for &v in &ys {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn json_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 42, 42, 1_000_000] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        let empty = Histogram::new();
        let back = Histogram::from_json(&empty.to_json()).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.min(), 0);
    }

    #[test]
    fn from_json_rejects_inconsistent_counts() {
        let mut h = Histogram::new();
        h.record(7);
        let mut j = h.to_json();
        if let Json::Obj(members) = &mut j {
            members[0].1 = Json::from_u64(99);
        }
        assert!(Histogram::from_json(&j).unwrap_err().contains("sum to"));
    }
}
