//! A small self-contained JSON model, writer, and parser.
//!
//! The build environment has no crates.io access, so serde is not
//! available; this module covers what the report and trace exporters
//! need: building values, pretty/compact writing, and parsing them back
//! for round-trip tests. Object member order is preserved (members are a
//! `Vec`, not a map), so written output is deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; the counters this crate reports
    /// stay far below 2^53, so the mantissa is exact for them.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn from_u64(n: u64) -> Json {
        debug_assert!(n < (1 << 53), "u64 {n} not exactly representable");
        Json::Num(n as f64)
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Two-space-indented rendering ending without a newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting [`parse`] accepts. The recursive-descent
/// parser would otherwise turn a hostile `[[[[…` prefix into a host stack
/// overflow (an abort, not a catchable error); everything this workspace
/// writes nests single-digit deep.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than supported"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Run of plain bytes, copied as one UTF-8 chunk.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) && self.bytes[self.pos] >= 0x20
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed by our own
                            // output; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // The scanned span is all ASCII digit/sign/exponent bytes, but go
        // through the fallible path anyway to keep the parser panic-free.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Convenience for building objects in declaration order.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = obj(vec![
            ("name", Json::Str("fig6 \"quoted\"\n".into())),
            ("count", Json::from_u64(123456789)),
            ("ratio", Json::Num(0.25)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::from_u64(1), Json::from_u64(2)]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 3, "b": [1, 2.5], "c": "x", "d": false}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap()[1].as_u64(), None);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(false));
        assert!(v.get("zzz").is_none());
    }

    #[test]
    fn parses_nested_and_whitespace() {
        let v = parse(" { \"a\" : [ { \"b\" : null } , true ] } ").unwrap();
        let inner = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(inner[0].get("b"), Some(&Json::Null));
        assert_eq!(inner[1].as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"abc",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""tab\tA""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\tA"));
        let ctl = Json::Str("\u{1}".into());
        assert_eq!(ctl.to_compact(), r#""\u0001""#);
        assert_eq!(parse(&ctl.to_compact()).unwrap(), ctl);
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        let deep_ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        for hostile in [
            "[".repeat(100_000),
            format!(
                "{}0{}",
                "[".repeat(MAX_DEPTH + 1),
                "]".repeat(MAX_DEPTH + 1)
            ),
            "{\"a\":".repeat(100_000),
        ] {
            let err = parse(&hostile).expect_err("hostile nesting must be rejected");
            assert_eq!(err.msg, "nesting deeper than supported");
        }
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(parse("-17").unwrap().as_f64(), Some(-17.0));
        assert_eq!(parse("2e3").unwrap().as_u64(), Some(2000));
        assert_eq!(parse("-17").unwrap().as_u64(), None);
    }
}
