//! Labeled counters, gauges, and histograms with lossless merge and a
//! Prometheus-style text exposition writer.
//!
//! The registry is the host-side aggregation surface: the sweep pool keeps
//! one per worker and folds them together after the run, and the planned
//! `osim-serve` scrape endpoint will render [`Registry::to_prometheus`]
//! directly. Nothing here sits on the simulated-cycle path, so ordinary
//! allocation is fine; determinism comes from sorting the exposition by
//! metric identity rather than insertion order.

use crate::hist::Histogram;
use crate::json::{obj, Json};

/// Metric identity: a name plus ordered `(key, value)` label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn label_text(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed must be backslash-escaped so a
/// hostile value can never break out of its quoted position or inject an
/// extra exposition line.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// One flattened metric value, as returned by [`Registry::samples`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sample {
    Counter(u64),
    Gauge(f64),
    Hist { count: u64, sum: u64 },
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(u64),
    Gauge(f64),
    // Boxed: a Histogram is ~2 kB of inline buckets, far larger than the
    // other variants; keeping it indirect keeps the metrics Vec compact.
    Hist(Box<Histogram>),
}

/// A set of labeled metrics.
///
/// Merging two registries adds counters and histograms element-wise
/// (lossless, commutative) and overwrites gauges with the other side's
/// latest value (gauges are point-in-time by definition).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Vec<(MetricKey, Value)>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn slot(&mut self, key: MetricKey, init: Value) -> &mut Value {
        if let Some(i) = self.metrics.iter().position(|(k, _)| *k == key) {
            &mut self.metrics[i].1
        } else {
            self.metrics.push((key, init));
            let last = self.metrics.len() - 1;
            &mut self.metrics[last].1
        }
    }

    /// Adds `n` to the counter `name{labels}` (creating it at 0).
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], n: u64) {
        match self.slot(MetricKey::new(name, labels), Value::Counter(0)) {
            Value::Counter(c) => *c += n,
            other => panic!("metric '{name}' is not a counter: {other:?}"),
        }
    }

    /// Reads a counter back (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = MetricKey::new(name, labels);
        match self.metrics.iter().find(|(k, _)| *k == key) {
            Some((_, Value::Counter(c))) => *c,
            _ => 0,
        }
    }

    /// Sets the gauge `name{labels}`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        match self.slot(MetricKey::new(name, labels), Value::Gauge(0.0)) {
            Value::Gauge(g) => *g = v,
            other => panic!("metric '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Reads a gauge back, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        match self.metrics.iter().find(|(k, _)| *k == key) {
            Some((_, Value::Gauge(g))) => Some(*g),
            _ => None,
        }
    }

    /// Records one sample into the histogram `name{labels}`.
    pub fn hist_record(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.hist_mut(name, labels).record(v);
    }

    /// The histogram `name{labels}`, created empty on first use.
    pub fn hist_mut(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut Histogram {
        match self.slot(MetricKey::new(name, labels), Value::Hist(Box::default())) {
            Value::Hist(h) => h,
            other => panic!("metric '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Reads a histogram back, if present.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        let key = MetricKey::new(name, labels);
        match self.metrics.iter().find(|(k, _)| *k == key) {
            Some((_, Value::Hist(h))) => Some(h),
            _ => None,
        }
    }

    /// Folds `other` into `self`: counters and histograms add, gauges take
    /// `other`'s value. Panics if the same key has different kinds.
    pub fn merge(&mut self, other: &Registry) {
        for (key, value) in &other.metrics {
            match value {
                Value::Counter(n) => {
                    match self.slot(key.clone(), Value::Counter(0)) {
                        Value::Counter(c) => *c += n,
                        o => panic!("merge kind mismatch for '{}': {o:?}", key.name),
                    };
                }
                Value::Gauge(v) => {
                    match self.slot(key.clone(), Value::Gauge(0.0)) {
                        Value::Gauge(g) => *g = *v,
                        o => panic!("merge kind mismatch for '{}': {o:?}", key.name),
                    };
                }
                Value::Hist(h) => {
                    match self.slot(key.clone(), Value::Hist(Box::default())) {
                        Value::Hist(mine) => mine.merge(h),
                        o => panic!("merge kind mismatch for '{}': {o:?}", key.name),
                    };
                }
            }
        }
    }

    /// Metrics sorted by identity — the deterministic exposition order.
    fn sorted(&self) -> Vec<&(MetricKey, Value)> {
        let mut v: Vec<&(MetricKey, Value)> = self.metrics.iter().collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Prometheus text exposition (the future `osim-serve` scrape body).
    ///
    /// Counters and gauges render one sample each; histograms render the
    /// conventional `_bucket{le=...}` cumulative series plus `_sum` and
    /// `_count`, listing only buckets that change the cumulative count.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.sorted() {
            let labels = key.label_text();
            match value {
                Value::Counter(c) => {
                    out.push_str(&format!("# TYPE {} counter\n", key.name));
                    out.push_str(&format!("{}{labels} {c}\n", key.name));
                }
                Value::Gauge(g) => {
                    out.push_str(&format!("# TYPE {} gauge\n", key.name));
                    out.push_str(&format!("{}{labels} {g}\n", key.name));
                }
                Value::Hist(h) => {
                    out.push_str(&format!("# TYPE {} histogram\n", key.name));
                    let mut cum = 0u64;
                    for (idx, n) in h.nonzero_buckets() {
                        cum += n;
                        let (_, hi) = Histogram::bucket_bounds(idx);
                        let le = if hi == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            hi.to_string()
                        };
                        out.push_str(&le_line(&key.name, &key.labels, &le, cum));
                    }
                    if h.count() > 0 {
                        let (_, last_hi) = Histogram::bucket_bounds(crate::hist::BUCKETS - 1);
                        if h.max() != last_hi {
                            out.push_str(&le_line(&key.name, &key.labels, "+Inf", cum));
                        }
                    } else {
                        out.push_str(&le_line(&key.name, &key.labels, "+Inf", 0));
                    }
                    out.push_str(&format!("{}_sum{labels} {}\n", key.name, h.sum()));
                    out.push_str(&format!("{}_count{labels} {}\n", key.name, h.count()));
                }
            }
        }
        out
    }

    /// Flattened point-in-time view keyed by exposition identity
    /// (`name{label="v"}`), sorted. Histograms collapse to their
    /// `(count, sum)` pair — exactly what the flight recorder needs to
    /// compute per-window rate deltas without holding full bucket arrays
    /// for every window in the ring.
    pub fn samples(&self) -> Vec<(String, Sample)> {
        self.sorted()
            .into_iter()
            .map(|(key, value)| {
                let id = format!("{}{}", key.name, key.label_text());
                let sample = match value {
                    Value::Counter(c) => Sample::Counter(*c),
                    Value::Gauge(g) => Sample::Gauge(*g),
                    Value::Hist(h) => Sample::Hist {
                        count: h.count(),
                        sum: h.sum(),
                    },
                };
                (id, sample)
            })
            .collect()
    }

    /// JSON form: `{"counters": {...}, "gauges": {...}, "hists": {...}}`
    /// with `name{label="v"}` exposition-style keys, sorted.
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (key, value) in self.sorted() {
            let id = format!("{}{}", key.name, key.label_text());
            match value {
                Value::Counter(c) => counters.push((id, Json::from_u64(*c))),
                Value::Gauge(g) => gauges.push((id, Json::Num(*g))),
                Value::Hist(h) => hists.push((id, h.to_json())),
            }
        }
        obj(vec![
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("hists", Json::Obj(hists)),
        ])
    }
}

fn le_line(name: &str, labels: &[(String, String)], le: &str, cum: u64) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    inner.push(format!("le=\"{le}\""));
    format!("{name}_bucket{{{}}} {cum}\n", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = Registry::new();
        r.counter_add("jobs_total", &[("fig", "fig7")], 2);
        r.counter_add("jobs_total", &[("fig", "fig7")], 3);
        r.counter_add("jobs_total", &[("fig", "fig6")], 1);
        assert_eq!(r.counter("jobs_total", &[("fig", "fig7")]), 5);
        assert_eq!(r.counter("jobs_total", &[("fig", "fig6")]), 1);
        assert_eq!(r.counter("jobs_total", &[("fig", "fig9")]), 0);
    }

    #[test]
    fn merge_adds_counters_and_hists_overwrites_gauges() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("n", &[], 1);
        b.counter_add("n", &[], 2);
        a.gauge_set("busy", &[], 0.25);
        b.gauge_set("busy", &[], 0.75);
        a.hist_record("wait", &[], 10);
        b.hist_record("wait", &[], 20);
        a.merge(&b);
        assert_eq!(a.counter("n", &[]), 3);
        let h = a.hist("wait", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        let text = a.to_prometheus();
        assert!(text.contains("busy 0.75"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = Registry::new();
        r.counter_add("events_total", &[("worker", "0")], 7);
        r.hist_record("wait_cycles", &[], 5);
        r.hist_record("wait_cycles", &[], 1000);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE events_total counter"));
        assert!(text.contains("events_total{worker=\"0\"} 7"));
        assert!(text.contains("# TYPE wait_cycles histogram"));
        assert!(text.contains("wait_cycles_bucket{le=\"5\"} 1"));
        assert!(text.contains("wait_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wait_cycles_sum 1005"));
        assert!(text.contains("wait_cycles_count 2"));
    }

    #[test]
    fn json_is_sorted_by_identity() {
        let mut r = Registry::new();
        r.counter_add("zz", &[], 1);
        r.counter_add("aa", &[], 2);
        let j = r.to_json();
        let counters = j.get("counters").unwrap().as_obj().unwrap();
        assert_eq!(counters[0].0, "aa");
        assert_eq!(counters[1].0, "zz");
    }
}
