//! Fleet telemetry primitives for the O-structures simulator.
//!
//! This crate is the dependency-free base of the observability layer:
//!
//! * [`Histogram`] — a fixed-size log-bucketed (HDR-style) latency
//!   histogram with an allocation-free `record()`, lossless bucket-wise
//!   merge, and monotone quantiles. The simulator layers record simulated
//!   cycle durations into these, so the contents are deterministic and
//!   scheduler-invariant, and safe to embed in byte-compared reports.
//! * [`Registry`] — labeled counters/gauges/histograms with lossless
//!   merge and a Prometheus-style text exposition writer (the scrape
//!   surface for the planned `osim-serve` sweep service). Used host-side
//!   by the parallel sweep pool.
//! * [`json`] — the hand-rolled JSON value model, writer, and parser
//!   shared with `osim-report` (which re-exports it; the build
//!   environment has no crates.io access, so serde is unavailable).
//!
//! `osim-engine`, `osim-mem`, `osim-uarch`, and `osim-cpu` all depend on
//! this crate, so it must stay a leaf: no dependencies, no simulated-time
//! types.

pub mod hist;
pub mod json;
pub mod registry;

pub use hist::{Histogram, BUCKETS};
pub use registry::{MetricKey, Registry};
