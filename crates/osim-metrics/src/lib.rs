//! Fleet telemetry primitives for the O-structures simulator.
//!
//! This crate is the dependency-free base of the observability layer:
//!
//! * [`Histogram`] — a fixed-size log-bucketed (HDR-style) latency
//!   histogram with an allocation-free `record()`, lossless bucket-wise
//!   merge, and monotone quantiles. The simulator layers record simulated
//!   cycle durations into these, so the contents are deterministic and
//!   scheduler-invariant, and safe to embed in byte-compared reports.
//! * [`Registry`] — labeled counters/gauges/histograms with lossless
//!   merge and a Prometheus-style text exposition writer (the scrape
//!   surface served live by `osim-serve`). Used host-side by the
//!   parallel sweep pool.
//! * [`FlightRecorder`] — a background sampler thread that snapshots a
//!   collector-built registry into a fixed-size ring of per-window
//!   deltas; the recording side stays allocation-free.
//! * [`trace`] — process-global host-thread span collection (disarmed by
//!   default) feeding the `--host-chrome` wall-clock trace export.
//! * [`json`] — the hand-rolled JSON value model, writer, and parser
//!   shared with `osim-report` (which re-exports it; the build
//!   environment has no crates.io access, so serde is unavailable).
//!
//! `osim-engine`, `osim-mem`, `osim-uarch`, and `osim-cpu` all depend on
//! this crate, so it must stay a leaf: no dependencies, no simulated-time
//! types.

pub mod flight;
pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use flight::{Collector, FlightCfg, FlightRecorder, Window};
pub use hist::{Histogram, BUCKETS};
pub use registry::{MetricKey, Registry, Sample};
pub use trace::{host_trace_arm, host_trace_armed, host_trace_drain, host_trace_span, HostSpan};
