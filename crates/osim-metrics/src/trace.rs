//! Host-thread span collection for wall-clock Chrome traces.
//!
//! The simulator's Chrome export (`osim-report::chrome`) draws simulated
//! cycles; this module captures what the *host* threads did — worker jobs,
//! vacuum passes, cache probes — so `--host-chrome` can plot the real
//! machine next to the simulated one. Collection is process-global and
//! disarmed by default: [`host_trace_span`] is a single relaxed atomic
//! load when disarmed, so instrumented layers can call it unconditionally
//! without perturbing byte-compared runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One completed wall-clock span.
#[derive(Debug, Clone)]
pub struct HostSpan {
    /// Span category; the exporter groups categories into Chrome
    /// processes ("job", "vacuum", "cache").
    pub cat: &'static str,
    /// Display name (job label, pass kind, probe outcome, ...).
    pub name: String,
    /// Track within the category (worker index, or 0 for singletons).
    pub tid: u64,
    /// Start offset in microseconds since the trace was armed.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn spans() -> &'static Mutex<Vec<HostSpan>> {
    static SPANS: OnceLock<Mutex<Vec<HostSpan>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Arms or disarms host-span collection. Arming pins the trace epoch.
pub fn host_trace_arm(on: bool) {
    if on {
        let _ = epoch();
    }
    ARMED.store(on, Ordering::Release);
}

/// Whether spans are currently being collected. Callers that need to
/// build a span name can check this first and skip the formatting work.
#[inline]
pub fn host_trace_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Records a span that started at `start` and ends now. No-op when
/// disarmed.
pub fn host_trace_span(cat: &'static str, name: &str, tid: u64, start: Instant) {
    if !host_trace_armed() {
        return;
    }
    let e = epoch();
    let start_us = start.saturating_duration_since(e).as_micros() as u64;
    let dur_us = start.elapsed().as_micros() as u64;
    let span = HostSpan {
        cat,
        name: name.to_string(),
        tid,
        start_us,
        dur_us,
    };
    spans()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(span);
}

/// Takes all collected spans, leaving the buffer empty.
pub fn host_trace_drain() -> Vec<HostSpan> {
    std::mem::take(&mut *spans().lock().unwrap_or_else(PoisonError::into_inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The collector is process-global; serialize tests that arm it.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_records_nothing() {
        let _g = guard();
        host_trace_arm(false);
        let _ = host_trace_drain();
        host_trace_span("job", "noop", 0, Instant::now());
        assert!(host_trace_drain().is_empty());
    }

    #[test]
    fn armed_spans_roundtrip_and_drain_empties() {
        let _g = guard();
        host_trace_arm(true);
        let _ = host_trace_drain();
        let start = Instant::now();
        host_trace_span("vacuum", "pass", 3, start);
        host_trace_arm(false);
        let spans = host_trace_drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].cat, "vacuum");
        assert_eq!(spans[0].name, "pass");
        assert_eq!(spans[0].tid, 3);
        assert!(host_trace_drain().is_empty());
    }
}
