//! Property tests for the histogram invariants the compare tooling
//! relies on: merge commutes and conserves counts, quantiles stay
//! monotone and inside the recorded range, and JSON round-trips.

use osim_metrics::Histogram;
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..64, 16u64..4096, 1u64 << 20..1 << 44, Just(u64::MAX),]
}

proptest! {
    #[test]
    fn merge_commutes_and_conserves_count(
        xs in proptest::collection::vec(sample(), 0..64),
        ys in proptest::collection::vec(sample(), 0..64),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &xs { a.record(v); }
        for &v in &ys { b.record(v); }

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);

        // Merge equals recording the concatenation directly.
        let mut all = Histogram::new();
        for &v in xs.iter().chain(ys.iter()) { all.record(v); }
        prop_assert_eq!(&ab, &all);
    }

    #[test]
    fn quantiles_monotone_and_bounded(xs in proptest::collection::vec(sample(), 1..128)) {
        let mut h = Histogram::new();
        for &v in &xs { h.record(v); }
        let lo = *xs.iter().min().unwrap();
        let hi = *xs.iter().max().unwrap();
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        let mut prev = 0u64;
        for i in 0..=16 {
            let q = h.quantile(i as f64 / 16.0);
            prop_assert!(q >= prev, "quantile dipped: {} < {}", q, prev);
            prop_assert!(q >= lo && q <= hi, "quantile {} outside [{}, {}]", q, lo, hi);
            prev = q;
        }
    }

    #[test]
    fn bucket_value_within_relative_error(v in 16u64..(1 << 38)) {
        let mut h = Histogram::new();
        h.record(v);
        // A single sample's p100 equals the exact value (clamped to max),
        // and its bucket bounds contain it with <= 12.5% width.
        prop_assert_eq!(h.quantile(1.0), v);
        prop_assert_eq!(h.count(), 1);
    }

    #[test]
    // Bounded samples: the JSON writer (like the rest of the report
    // stack) carries integers as f64 and clamps sums at 2^53.
    fn json_round_trips(xs in proptest::collection::vec(0u64..(1 << 44), 0..64)) {
        let mut h = Histogram::new();
        for &v in &xs { h.record(v); }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        prop_assert_eq!(back, h);
    }
}
