//! Property tests for `Registry`: merge commutativity for the lossless
//! kinds (counters, histograms) and label-value escaping in the
//! Prometheus exposition.

use osim_metrics::Registry;
use proptest::prelude::*;

/// Builds a registry of counters and histograms from generated specs.
/// Gauges are deliberately excluded: merge overwrites them with the other
/// side's value, so they are documented as order-dependent.
fn lossless_registry(counters: &[(u8, u64)], hist_samples: &[(u8, u64)]) -> Registry {
    let mut reg = Registry::new();
    for (name_idx, n) in counters {
        let name = format!("c{name_idx}_total");
        reg.counter_add(&name, &[("k", "v")], *n);
    }
    for (name_idx, v) in hist_samples {
        let name = format!("h{name_idx}_us");
        reg.hist_record(&name, &[], *v);
    }
    reg
}

proptest! {
    #[test]
    fn merge_is_commutative_for_counters_and_hists(
        ca in proptest::collection::vec((0u8..4, 0u64..1000), 0..8),
        cb in proptest::collection::vec((0u8..4, 0u64..1000), 0..8),
        ha in proptest::collection::vec((0u8..3, 0u64..100_000), 0..8),
        hb in proptest::collection::vec((0u8..3, 0u64..100_000), 0..8),
    ) {
        let a = lossless_registry(&ca, &ha);
        let b = lossless_registry(&cb, &hb);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // The exposition sorts by metric identity, so equal contents
        // render identically regardless of merge order.
        prop_assert_eq!(ab.to_prometheus(), ba.to_prometheus());
        prop_assert_eq!(ab.to_json().to_pretty(), ba.to_json().to_pretty());
    }

    #[test]
    fn merge_is_associative_enough_to_fold_worker_shards(
        ca in proptest::collection::vec((0u8..3, 0u64..500), 0..6),
        cb in proptest::collection::vec((0u8..3, 0u64..500), 0..6),
        cc in proptest::collection::vec((0u8..3, 0u64..500), 0..6),
    ) {
        let a = lossless_registry(&ca, &[]);
        let b = lossless_registry(&cb, &[]);
        let c = lossless_registry(&cc, &[]);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.to_prometheus(), right.to_prometheus());
    }

    #[test]
    fn label_values_never_break_the_exposition(
        raw in proptest::collection::vec(
            prop_oneof![
                Just('\n'),
                Just('"'),
                Just('\\'),
                Just('a'),
                Just('Z'),
                Just(' '),
                Just('{'),
                Just('}'),
            ],
            0..12,
        ),
    ) {
        let value: String = raw.into_iter().collect();
        let mut reg = Registry::new();
        reg.counter_add("evil_total", &[("fig", value.as_str())], 1);
        reg.hist_record("evil_us", &[("fig", value.as_str())], 42);
        let text = reg.to_prometheus();
        for line in text.lines() {
            // Every line must be a comment or `name{labels} value`; a raw
            // newline inside a label value would produce a fragment line
            // that satisfies neither.
            let well_formed = line.starts_with("# TYPE ")
                || line
                    .rsplit_once(' ')
                    .map(|(series, val)| {
                        let name_ok = series.starts_with("evil_");
                        let val_ok = val.parse::<f64>().is_ok();
                        name_ok && val_ok
                    })
                    .unwrap_or(false);
            prop_assert!(well_formed, "malformed exposition line: {line:?}");
            // Inside any label block, quotes and backslashes must be
            // escaped: an unescaped quote would terminate the value early
            // and leave a dangling `"` fragment. Check by unescaping.
            if let Some(open) = line.find('{') {
                let labels = &line[open + 1..line.rfind('}').unwrap_or(line.len())];
                let mut chars = labels.chars();
                let mut in_value = false;
                while let Some(c) = chars.next() {
                    match (in_value, c) {
                        (true, '\\') => {
                            let esc = chars.next();
                            prop_assert!(
                                matches!(esc, Some('\\') | Some('"') | Some('n')),
                                "bad escape in {line:?}"
                            );
                        }
                        (true, '"') => in_value = false,
                        (true, '\n') => prop_assert!(false, "raw newline in {line:?}"),
                        (false, '"') => in_value = true,
                        _ => {}
                    }
                }
                prop_assert!(!in_value, "unterminated label value in {line:?}");
            }
        }
    }

    #[test]
    fn escaped_values_round_trip_to_distinct_series(
        a in prop_oneof![Just("x\ny"), Just("x\"y"), Just("x\\y"), Just("plain")],
        b in prop_oneof![Just("x\ny"), Just("x\"y"), Just("x\\y"), Just("plain")],
    ) {
        let mut reg = Registry::new();
        reg.counter_add("series_total", &[("v", a)], 1);
        reg.counter_add("series_total", &[("v", b)], 1);
        let text = reg.to_prometheus();
        let sample_lines = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .count();
        // Distinct raw values must stay distinct series after escaping
        // (escaping must be injective), and identical values must
        // accumulate into one.
        let expect = if a == b { 1 } else { 2 };
        prop_assert_eq!(sample_lines, expect, "exposition:\n{}", text);
    }
}
