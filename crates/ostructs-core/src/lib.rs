//! O-structures as a software library: unlimited memory versioning,
//! renaming and fine-grained locking for real threads.
//!
//! This crate is the *software* implementation of the paper's memory
//! interface (§II) — the place the authors themselves started ("we've
//! indeed started with a software prototype", §II-C). It provides:
//!
//! * [`OCell`] — a multi-version memory cell with the six O-structure
//!   operations: `LOAD-VERSION`, `LOAD-LATEST`, `STORE-VERSION`,
//!   `LOCK-LOAD-VERSION`, `LOCK-LOAD-LATEST`, `UNLOCK-VERSION`. Loads of
//!   versions that do not exist yet (or are locked) block the calling
//!   thread; stores and unlocks wake the waiters. Any number of cells and
//!   versions per cell, bounded only by memory.
//! * [`Versioned`] — the Fig. 1 library API (`versioned<T>`): per-task
//!   ergonomic wrappers (`store_ver`, `lock_load_last`, `unlock_ver`)
//!   where the cell remembers which version each task holds locked.
//! * [`runtime::ORuntime`] — a task-parallel runtime that executes a
//!   sequential list of tasks across worker threads with task-id order,
//!   plus the §III-B garbage collector (shadowed list → pending list →
//!   reclaim once the active-task window has passed).
//! * [`map::OMap`] — a sharded, snapshot-isolated concurrent map (one
//!   cell per key, fxhash shard selection, per-shard locks).
//! * [`vacuum`] — epoch-watermark reclamation for free-threaded use:
//!   a [`vacuum::ReaderRegistry`] of pinned snapshot caps feeding a
//!   background [`vacuum::Vacuum`] that prunes below the oldest live
//!   reader, with counters surfaced through `osim-metrics`.
//!
//! The cycle-level microarchitectural implementation that the paper's
//! evaluation is based on lives in the `osim-*` crates; this crate is the
//! adoption surface for programs that want O-structure semantics today, at
//! software speed (the paper's observation that software versioning is
//! substantially slower than hardware support still stands — see the
//! `software_overhead` bench).

pub mod cell;
pub mod error;
pub mod istructs;
pub mod map;
pub mod metrics;
pub mod runtime;
pub mod vacuum;
pub mod versioned;

pub use cell::OCell;
pub use error::OError;
pub use map::OMap;
pub use metrics::fill_store_registry;
pub use runtime::ORuntime;
pub use vacuum::{
    fill_vacuum_registry, ReaderGuard, ReaderRegistry, Vacuum, VacuumCfg, VacuumStats,
};
pub use versioned::Versioned;

/// A version identifier. Under task-based execution these are task ids, so
/// version order mirrors sequential program order.
pub type Version = u64;

/// A task identifier. `0` is reserved (cells use it internally for
/// "unlocked").
pub type TaskId = u64;
