//! Error type for O-structure misuse.

use crate::{TaskId, Version};

/// A violation of the O-structure protocol.
///
/// Semantically valid but *blocking* situations (loading a version that
/// does not exist yet, locking a locked version) are not errors — they
/// suspend the caller. Errors are protocol violations that a correct
/// program never commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OError {
    /// `STORE-VERSION` to a version that already exists ("Once created, a
    /// version can be locked but not modified").
    VersionExists(Version),
    /// `UNLOCK-VERSION` by a task that holds no lock on this cell.
    NotLockOwner(TaskId),
    /// Task id 0 is reserved.
    ReservedTaskId,
}

impl std::fmt::Display for OError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OError::VersionExists(v) => write!(f, "version {v} already exists"),
            OError::NotLockOwner(t) => write!(f, "task {t} does not hold a lock on this cell"),
            OError::ReservedTaskId => write!(f, "task id 0 is reserved"),
        }
    }
}

impl std::error::Error for OError {}
