//! The multi-version cell.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::OError;
use crate::{TaskId, Version};

struct Slot<T> {
    value: T,
    locked_by: Option<TaskId>,
}

struct State<T> {
    versions: BTreeMap<Version, Slot<T>>,
    /// Which version each task currently holds locked (at most one lock
    /// per task per cell, as in the Fig. 1 API).
    held: HashMap<TaskId, Version>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    changed: Condvar,
}

/// Type-erased garbage-collection interface; the runtime holds tracked
/// cells as `Weak<dyn Prune>` so one collector can prune cells of any
/// value type.
pub trait Prune {
    /// See [`OCell::prune_below`].
    fn prune_below(&self, boundary: Version) -> usize;
}

impl<T> Prune for Inner<T> {
    fn prune_below(&self, boundary: Version) -> usize {
        let mut st = self.state.lock();
        let Some((&keep, _)) = st.versions.range(..=boundary).next_back() else {
            return 0;
        };
        let before = st.versions.len();
        st.versions
            .retain(|&v, slot| v >= keep || slot.locked_by.is_some());
        before - st.versions.len()
    }
}

/// A software O-structure: one memory location, many ordered versions.
///
/// Cheap to clone (a handle); all clones refer to the same cell. `T` must
/// be `Clone` because loads return copies while the version stays in place
/// for other readers.
///
/// # Blocking semantics (§II-A of the paper)
///
/// * [`OCell::load_version`] blocks until the exact version exists and is
///   unlocked. Locks on *other* versions are ignored.
/// * [`OCell::load_latest`] blocks until some version ≤ the cap exists and
///   the highest such version is unlocked. It never falls back to an older
///   unlocked version — that would break ordering.
/// * [`OCell::store_version`] creates a version (versions are write-once).
/// * The `lock_` flavours additionally acquire the version's lock; locking
///   an already-locked version blocks.
/// * [`OCell::unlock_version`] releases the caller's lock and can
///   atomically create a successor version carrying the same value — the
///   rename step of hand-over-hand pipelining.
pub struct OCell<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for OCell<T> {
    fn clone(&self) -> Self {
        OCell {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Default for OCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> OCell<T> {
    /// An empty cell (no versions yet; all loads block).
    pub fn new() -> Self {
        OCell {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    versions: BTreeMap::new(),
                    held: HashMap::new(),
                }),
                changed: Condvar::new(),
            }),
        }
    }

    /// A cell with one initial version.
    pub fn with_initial(version: Version, value: T) -> Self {
        let cell = Self::new();
        cell.store_version(version, value)
            .expect("fresh cell accepts any version");
        cell
    }

    /// `STORE-VERSION`: creates `version` holding `value` and wakes every
    /// blocked load. Versions are immutable once created.
    pub fn store_version(&self, version: Version, value: T) -> Result<(), OError> {
        let mut st = self.inner.state.lock();
        if st.versions.contains_key(&version) {
            return Err(OError::VersionExists(version));
        }
        st.versions.insert(
            version,
            Slot {
                value,
                locked_by: None,
            },
        );
        drop(st);
        self.inner.changed.notify_all();
        Ok(())
    }

    /// `LOAD-VERSION`: blocks until `version` exists and is unlocked.
    pub fn load_version(&self, version: Version) -> T {
        let mut st = self.inner.state.lock();
        loop {
            if let Some(slot) = st.versions.get(&version) {
                if slot.locked_by.is_none() {
                    return slot.value.clone();
                }
            }
            self.inner.changed.wait(&mut st);
        }
    }

    /// Non-blocking `LOAD-VERSION`: `None` if absent or locked.
    pub fn try_load_version(&self, version: Version) -> Option<T> {
        let st = self.inner.state.lock();
        st.versions
            .get(&version)
            .filter(|s| s.locked_by.is_none())
            .map(|s| s.value.clone())
    }

    /// `LOAD-VERSION` with a timeout — mainly for tests that must detect a
    /// stall without hanging. `None` on timeout.
    pub fn load_version_timeout(&self, version: Version, dur: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + dur;
        let mut st = self.inner.state.lock();
        loop {
            if let Some(slot) = st.versions.get(&version) {
                if slot.locked_by.is_none() {
                    return Some(slot.value.clone());
                }
            }
            if self.inner.changed.wait_until(&mut st, deadline).timed_out() {
                return None;
            }
        }
    }

    /// `LOAD-LATEST`: blocks until some version ≤ `cap` exists and the
    /// newest such version is unlocked. Returns `(version, value)`.
    pub fn load_latest(&self, cap: Version) -> (Version, T) {
        let mut st = self.inner.state.lock();
        loop {
            if let Some((&v, slot)) = st.versions.range(..=cap).next_back() {
                if slot.locked_by.is_none() {
                    return (v, slot.value.clone());
                }
            }
            self.inner.changed.wait(&mut st);
        }
    }

    /// Non-blocking `LOAD-LATEST`.
    pub fn try_load_latest(&self, cap: Version) -> Option<(Version, T)> {
        let st = self.inner.state.lock();
        st.versions
            .range(..=cap)
            .next_back()
            .filter(|(_, s)| s.locked_by.is_none())
            .map(|(&v, s)| (v, s.value.clone()))
    }

    /// `LOCK-LOAD-VERSION`: exact load + lock as `tid`. Blocks while the
    /// version is absent or locked (by anyone, including `tid`).
    pub fn lock_load_version(&self, version: Version, tid: TaskId) -> Result<T, OError> {
        if tid == 0 {
            return Err(OError::ReservedTaskId);
        }
        let mut st = self.inner.state.lock();
        loop {
            if let Some(slot) = st.versions.get_mut(&version) {
                if slot.locked_by.is_none() {
                    slot.locked_by = Some(tid);
                    let value = slot.value.clone();
                    st.held.insert(tid, version);
                    return Ok(value);
                }
            }
            self.inner.changed.wait(&mut st);
        }
    }

    /// Non-blocking `LOCK-LOAD-LATEST`: `None` when the newest version ≤
    /// `cap` is absent or already locked.
    pub fn try_lock_load_latest(&self, cap: Version, tid: TaskId) -> Option<(Version, T)> {
        if tid == 0 {
            return None;
        }
        let mut st = self.inner.state.lock();
        let v = st
            .versions
            .range(..=cap)
            .next_back()
            .filter(|(_, s)| s.locked_by.is_none())
            .map(|(&v, _)| v)?;
        let slot = st.versions.get_mut(&v).expect("just found");
        slot.locked_by = Some(tid);
        let value = slot.value.clone();
        st.held.insert(tid, v);
        Some((v, value))
    }

    /// `LOCK-LOAD-LATEST`: capped load + lock as `tid`.
    /// Returns `(version, value)`.
    pub fn lock_load_latest(&self, cap: Version, tid: TaskId) -> Result<(Version, T), OError> {
        if tid == 0 {
            return Err(OError::ReservedTaskId);
        }
        let mut st = self.inner.state.lock();
        loop {
            let found = st
                .versions
                .range(..=cap)
                .next_back()
                .filter(|(_, s)| s.locked_by.is_none())
                .map(|(&v, _)| v);
            if let Some(v) = found {
                let slot = st.versions.get_mut(&v).expect("just found");
                slot.locked_by = Some(tid);
                let value = slot.value.clone();
                st.held.insert(tid, v);
                return Ok((v, value));
            }
            self.inner.changed.wait(&mut st);
        }
    }

    /// `UNLOCK-VERSION`: releases `tid`'s lock on this cell; with
    /// `create = Some(vn)` also creates unlocked version `vn` carrying the
    /// just-unlocked value (the rename). Wakes all waiters.
    pub fn unlock_version(&self, tid: TaskId, create: Option<Version>) -> Result<(), OError> {
        let mut st = self.inner.state.lock();
        let Some(vl) = st.held.remove(&tid) else {
            return Err(OError::NotLockOwner(tid));
        };
        let value = {
            let slot = st.versions.get_mut(&vl).expect("held version exists");
            debug_assert_eq!(slot.locked_by, Some(tid));
            slot.locked_by = None;
            slot.value.clone()
        };
        if let Some(vn) = create {
            if st.versions.contains_key(&vn) {
                // Roll the unlock forward anyway; the create is the error.
                drop(st);
                self.inner.changed.notify_all();
                return Err(OError::VersionExists(vn));
            }
            st.versions.insert(
                vn,
                Slot {
                    value,
                    locked_by: None,
                },
            );
        }
        drop(st);
        self.inner.changed.notify_all();
        Ok(())
    }

    /// The version `tid` currently holds locked, if any.
    pub fn held_by(&self, tid: TaskId) -> Option<Version> {
        self.inner.state.lock().held.get(&tid).copied()
    }

    /// Invariant oracle: cross-checks the lock bookkeeping both ways —
    /// every held-lock record must point at a version locked by exactly
    /// that task, and every locked version must have a matching held
    /// record. Returns the first inconsistency. The software twin of the
    /// simulator's lock-exclusion oracle; the stress harness's test suites
    /// call it after perturbed interleavings.
    pub fn check_invariants(&self) -> Result<(), String> {
        let st = self.inner.state.lock();
        for (&tid, &v) in &st.held {
            match st.versions.get(&v) {
                Some(slot) if slot.locked_by == Some(tid) => {}
                Some(slot) => {
                    return Err(format!(
                        "task {tid} records a lock on version {v}, but the \
                         version is held by {:?}",
                        slot.locked_by
                    ))
                }
                None => {
                    return Err(format!(
                        "task {tid} records a lock on version {v}, which does \
                         not exist"
                    ))
                }
            }
        }
        for (&v, slot) in &st.versions {
            if let Some(tid) = slot.locked_by {
                if st.held.get(&tid) != Some(&v) {
                    return Err(format!(
                        "version {v} is locked by task {tid}, which has no \
                         matching held record"
                    ));
                }
            }
        }
        Ok(())
    }

    /// All existing versions, ascending (diagnostics / tests).
    pub fn versions(&self) -> Vec<Version> {
        self.inner.state.lock().versions.keys().copied().collect()
    }

    /// Number of live versions.
    pub fn version_count(&self) -> usize {
        self.inner.state.lock().versions.len()
    }

    /// Garbage collection: drops every version strictly older than the
    /// newest version ≤ `boundary`, i.e. the versions shadowed for every
    /// task whose cap is ≥ `boundary`. Locked versions are never dropped.
    /// Returns how many versions were reclaimed.
    ///
    /// Safety is the caller's contract (the runtime's rules 1–3): no
    /// active or future task may load below `boundary` afterwards.
    pub fn prune_below(&self, boundary: Version) -> usize {
        Prune::prune_below(&*self.inner, boundary)
    }

    /// A type-erased weak handle for the runtime's collector.
    pub fn prune_handle(&self) -> std::sync::Weak<dyn Prune + Send + Sync>
    where
        T: Send + 'static,
    {
        let arc: Arc<dyn Prune + Send + Sync> = Arc::clone(&self.inner) as _;
        Arc::downgrade(&arc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    const T50: Duration = Duration::from_millis(200);

    #[test]
    fn store_then_load_exact() {
        let c = OCell::new();
        c.store_version(3, 42).unwrap();
        assert_eq!(c.load_version(3), 42);
    }

    #[test]
    fn versions_are_write_once() {
        let c = OCell::new();
        c.store_version(1, 5).unwrap();
        assert_eq!(c.store_version(1, 6), Err(OError::VersionExists(1)));
        assert_eq!(c.load_version(1), 5);
    }

    #[test]
    fn load_blocks_until_store() {
        let c = OCell::new();
        let c2 = c.clone();
        let t = thread::spawn(move || c2.load_version(1));
        thread::sleep(Duration::from_millis(20));
        c.store_version(1, 9).unwrap();
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn out_of_order_creation() {
        let c = OCell::new();
        c.store_version(2, 22).unwrap();
        assert_eq!(c.try_load_version(2), Some(22));
        assert_eq!(c.try_load_version(1), None, "version 1 not created yet");
        c.store_version(1, 11).unwrap();
        assert_eq!(c.load_version(1), 11);
        assert_eq!(c.versions(), vec![1, 2]);
    }

    #[test]
    fn load_latest_caps() {
        let c = OCell::new();
        for v in [2u64, 5, 9] {
            c.store_version(v, v as u32).unwrap();
        }
        assert_eq!(c.load_latest(9), (9, 9));
        assert_eq!(c.load_latest(8), (5, 5));
        assert_eq!(c.load_latest(2), (2, 2));
        assert_eq!(c.try_load_latest(1), None);
    }

    #[test]
    fn locked_version_blocks_exact_loads_only() {
        let c = OCell::new();
        c.store_version(1, 10).unwrap();
        c.store_version(2, 20).unwrap();
        c.lock_load_version(1, 7).unwrap();
        assert_eq!(c.try_load_version(1), None, "locked");
        assert_eq!(
            c.try_load_version(2),
            Some(20),
            "other versions ignore the lock"
        );
        c.unlock_version(7, None).unwrap();
        assert_eq!(c.try_load_version(1), Some(10));
    }

    #[test]
    fn load_latest_blocks_on_locked_latest() {
        let c = OCell::new();
        c.store_version(1, 10).unwrap();
        c.store_version(5, 50).unwrap();
        c.lock_load_version(5, 9).unwrap();
        assert_eq!(c.try_load_latest(7), None, "latest ≤ 7 is locked");
        assert_eq!(c.try_load_latest(4), Some((1, 10)));
    }

    #[test]
    fn unlock_rename_orders_a_follower() {
        let c = OCell::with_initial(1, 77u32);
        let (v1, _) = c.lock_load_latest(1, 1).unwrap();
        assert_eq!(v1, 1);
        let c2 = c.clone();
        let follower = thread::spawn(move || c2.lock_load_latest(2, 2).unwrap());
        thread::sleep(Duration::from_millis(20));
        // Predecessor renames on unlock; follower locks version 2.
        c.unlock_version(1, Some(2)).unwrap();
        let (v2, val) = follower.join().unwrap();
        assert_eq!((v2, val), (2, 77));
        c.unlock_version(2, None).unwrap();
    }

    #[test]
    fn unlock_requires_ownership() {
        let c = OCell::with_initial(1, 0u32);
        assert_eq!(c.unlock_version(9, None), Err(OError::NotLockOwner(9)));
        c.lock_load_version(1, 3).unwrap();
        assert_eq!(c.unlock_version(4, None), Err(OError::NotLockOwner(4)));
        c.unlock_version(3, None).unwrap();
    }

    #[test]
    fn held_by_tracks_lock() {
        let c = OCell::with_initial(4, 0u32);
        assert_eq!(c.held_by(2), None);
        c.lock_load_version(4, 2).unwrap();
        assert_eq!(c.held_by(2), Some(4));
        c.unlock_version(2, None).unwrap();
        assert_eq!(c.held_by(2), None);
    }

    #[test]
    fn invariants_hold_through_lock_lifecycle() {
        let c = OCell::with_initial(1, 0u32);
        c.check_invariants().unwrap();
        c.lock_load_version(1, 3).unwrap();
        c.check_invariants().unwrap();
        c.unlock_version(3, Some(2)).unwrap();
        c.check_invariants().unwrap();
        c.lock_load_version(2, 4).unwrap();
        c.prune_below(2);
        c.check_invariants().unwrap();
        c.unlock_version(4, None).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn timeout_detects_stall() {
        let c: OCell<u32> = OCell::new();
        assert_eq!(c.load_version_timeout(1, Duration::from_millis(30)), None);
        c.store_version(1, 1).unwrap();
        assert_eq!(c.load_version_timeout(1, T50), Some(1));
    }

    #[test]
    fn prune_below_keeps_newest_at_or_under_boundary() {
        let c = OCell::new();
        for v in 1..=10u64 {
            c.store_version(v, v as u32).unwrap();
        }
        let reclaimed = c.prune_below(7);
        assert_eq!(reclaimed, 6, "versions 1..=6 dropped, 7 kept");
        assert_eq!(c.versions(), vec![7, 8, 9, 10]);
        // A task with cap 7 still gets the right answer.
        assert_eq!(c.load_latest(7), (7, 7));
    }

    #[test]
    fn prune_spares_locked_versions() {
        let c = OCell::new();
        for v in 1..=5u64 {
            c.store_version(v, v as u32).unwrap();
        }
        c.lock_load_version(2, 8).unwrap();
        c.prune_below(5);
        assert_eq!(c.versions(), vec![2, 5], "locked version 2 survives");
        c.unlock_version(8, None).unwrap();
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let c: OCell<u64> = OCell::new();
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                // Each consumer waits for its producer's version.
                c.load_version(t)
            }));
        }
        for t in (1..=8u64).rev() {
            let c = c.clone();
            thread::spawn(move || c.store_version(t, t * 100).unwrap());
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), (i as u64 + 1) * 100);
        }
    }

    #[test]
    fn exact_entry_chain_orders_threads() {
        // N threads pipeline through one cell in task order regardless of
        // OS scheduling: each locks exactly its own entry version, which
        // only its predecessor's rename creates.
        let c = OCell::with_initial(2, 0u64);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for tid in 2..=9u64 {
            let c = c.clone();
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                c.lock_load_version(tid, tid).unwrap();
                order.lock().push(tid);
                c.unlock_version(tid, Some(tid + 1)).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), (2..=9u64).collect::<Vec<_>>());
    }
}
