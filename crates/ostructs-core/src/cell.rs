//! The multi-version cell.
//!
//! # Hot-path layout (read-optimized split)
//!
//! The original prototype kept everything — version map, lock table,
//! waiter bookkeeping — behind one `Mutex<State>`, so every committed-read
//! serialized against every other operation on the cell. This version
//! splits the cell in two:
//!
//! * **Truth** stays in `Mutex<State>`: a `BTreeMap<Version, Slot>` plus
//!   the per-task lock table and the `Condvar` that blocking operations
//!   park on. All mutations and all *blocking* waits go through it.
//! * **A read-mostly snapshot** of the version list is published behind a
//!   `RwLock<Arc<Snapshot>>` and atomically swapped on every mutation.
//!   Loads of already-committed versions resolve entirely against the
//!   snapshot: a brief shared read guard, a binary search, and an `Arc`
//!   bump — no exclusive lock, and concurrent readers never serialize
//!   against each other.
//!
//! The snapshot stores the version list **path-compressed into runs**
//! (à la the `PersistentCell` of persistency): a run `[lo, hi]` covers
//! every one of the contiguous versions `lo..=hi`, all sharing one
//! `Arc<T>` value. Rename chains (`unlock_version(_, Some(v+1))` in a
//! hand-over-hand pipeline) therefore collapse to a single run — a
//! million-rename history is one entry and one heap allocation. The
//! snapshot keeps at most [`WINDOW_RUNS`] of the *newest* runs; anything
//! below that window falls back to the mutex slow path (the window is a
//! cache, never a semantic boundary). Values live in `Arc<T>` throughout,
//! so the `_arc` load variants return without cloning `T` at all.

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::OError;
use crate::{TaskId, Version};

/// Maximum number of runs retained in the published read snapshot. A cell
/// whose history compresses to at most this many runs is fully answerable
/// on the fast path; older history past the window takes the slow path.
const WINDOW_RUNS: usize = 32;

struct Slot<T> {
    value: Arc<T>,
    locked_by: Option<TaskId>,
}

/// A maximal range of contiguous versions `lo..=hi` that all exist and
/// share one value allocation (renames reuse the predecessor's `Arc`).
struct Run<T> {
    lo: Version,
    hi: Version,
    value: Arc<T>,
}

impl<T> Clone for Run<T> {
    fn clone(&self) -> Self {
        Run {
            lo: self.lo,
            hi: self.hi,
            value: Arc::clone(&self.value),
        }
    }
}

/// The published read-mostly view: the newest runs plus the (small) set of
/// currently locked versions. Immutable once published; mutations build a
/// fresh snapshot and swap the `Arc`.
struct Snapshot<T> {
    /// When true, `runs` covers *every* existing version; an absent lookup
    /// is authoritative. When false, only versions `>= floor()` are
    /// covered and anything below must consult the slow path.
    complete: bool,
    /// Sorted by `lo`, disjoint, covering all versions `>= floor()`.
    runs: Vec<Run<T>>,
    /// Sorted; every currently locked version of the whole cell.
    locked: Vec<Version>,
}

/// Fast-path resolution against a [`Snapshot`]. Borrows the snapshot, so
/// hits can be consumed (cloned, `Arc`-bumped, or just read) while the
/// snap guard is held — the cloning load paths copy `T` without ever
/// touching the value `Arc`'s refcount.
enum FastRead<'a, T> {
    /// Committed and unlocked: the authoritative answer.
    Hit(Version, &'a Arc<T>),
    /// Authoritatively absent right now (no such version / none <= cap).
    Absent,
    /// The target version exists but is locked right now.
    Locked,
    /// Below the snapshot window; only the slow path knows.
    Unknown,
}

impl<T> Snapshot<T> {
    fn empty() -> Self {
        Snapshot {
            complete: true,
            runs: Vec::new(),
            locked: Vec::new(),
        }
    }

    /// Lowest version the window covers (0 when complete or empty).
    fn floor(&self) -> Version {
        if self.complete {
            0
        } else {
            self.runs.first().map_or(0, |r| r.lo)
        }
    }

    fn is_locked(&self, v: Version) -> bool {
        self.locked.binary_search(&v).is_ok()
    }

    /// Newest existing version `<= cap`, if the window can answer.
    fn read_latest(&self, cap: Version) -> FastRead<'_, T> {
        let i = self.runs.partition_point(|r| r.lo <= cap);
        if i == 0 {
            // No covered version <= cap: authoritative only if the window
            // covers everything.
            return if self.complete {
                FastRead::Absent
            } else {
                FastRead::Unknown
            };
        }
        let run = &self.runs[i - 1];
        let v = run.hi.min(cap);
        if self.is_locked(v) {
            FastRead::Locked
        } else {
            FastRead::Hit(v, &run.value)
        }
    }

    /// Exact-version lookup, if the window can answer.
    fn read_exact(&self, version: Version) -> FastRead<'_, T> {
        if !self.complete && version < self.floor() {
            return FastRead::Unknown;
        }
        let i = self.runs.partition_point(|r| r.lo <= version);
        if i == 0 {
            return FastRead::Absent;
        }
        let run = &self.runs[i - 1];
        if version > run.hi {
            FastRead::Absent
        } else if self.is_locked(version) {
            FastRead::Locked
        } else {
            FastRead::Hit(version, &run.value)
        }
    }
}

struct State<T> {
    versions: BTreeMap<Version, Slot<T>>,
    /// Which version each task currently holds locked (at most one lock
    /// per task per cell, as in the Fig. 1 API).
    held: HashMap<TaskId, Version>,
    /// Mirror of the published runs, maintained incrementally so the
    /// common append (store at a new maximum version) publishes in O(1)
    /// amortized instead of rewalking the map.
    window: Vec<Run<T>>,
    window_complete: bool,
}

impl<T> State<T> {
    /// Rebuilds the window by walking the newest versions of the map,
    /// coalescing contiguous same-value versions into runs. Used after
    /// out-of-order stores and pruning; the append path updates in place.
    fn rebuild_window(&mut self) {
        self.window.clear();
        self.window_complete = true;
        for (&v, slot) in self.versions.iter().rev() {
            if let Some(lowest) = self.window.last_mut() {
                if lowest.lo == v + 1 && Arc::ptr_eq(&lowest.value, &slot.value) {
                    lowest.lo = v;
                    continue;
                }
                if self.window.len() == WINDOW_RUNS {
                    self.window_complete = false;
                    break;
                }
            }
            self.window.push(Run {
                lo: v,
                hi: v,
                value: Arc::clone(&slot.value),
            });
        }
        // Built newest-first; publish ascending.
        self.window.reverse();
    }

    /// Records a freshly inserted version in the window.
    fn window_note_store(&mut self, v: Version, value: &Arc<T>) {
        match self.window.last_mut() {
            Some(last) if v > last.hi => {
                if v == last.hi + 1 && Arc::ptr_eq(&last.value, value) {
                    last.hi = v; // rename chain: extend the run in place
                } else {
                    self.window.push(Run {
                        lo: v,
                        hi: v,
                        value: Arc::clone(value),
                    });
                    if self.window.len() > WINDOW_RUNS {
                        self.window.remove(0);
                        self.window_complete = false;
                    }
                }
            }
            Some(first_any) => {
                // Out-of-order store. Below the window floor it is already
                // slow-path territory and the window stays valid; inside
                // the window's span, rebuild.
                let _ = first_any;
                let floor = self.window.first().map_or(0, |r| r.lo);
                if self.window_complete || v >= floor {
                    self.rebuild_window();
                }
            }
            None => {
                self.window.push(Run {
                    lo: v,
                    hi: v,
                    value: Arc::clone(value),
                });
            }
        }
    }

    fn snapshot(&self) -> Snapshot<T> {
        let mut locked: Vec<Version> = self.held.values().copied().collect();
        locked.sort_unstable();
        Snapshot {
            complete: self.window_complete,
            runs: self.window.clone(),
            locked,
        }
    }
}

/// A minimal reader-count guard for the published snapshot — the
/// "seqlock-style guard" of the design: two uncontended atomic RMWs per
/// read (no pthread rwlock, no syscall path), and writers — always
/// serialized by the cell's state mutex — briefly drain readers before
/// swapping the `Arc`. Reads never block writers for longer than a
/// snapshot lookup; the writer critical section is a pointer swap.
///
/// `state` encoding: bit 0 = writer present, bits 1.. = reader count × 2.
struct SnapLock<T> {
    state: AtomicU32,
    slot: UnsafeCell<Arc<Snapshot<T>>>,
}

// Safety: `slot` is only written in `set()` with the writer bit held and
// all readers drained, and only read through `SnapGuard` while a reader
// increment holds the writer out. The contained `Arc<Snapshot<T>>` is
// shared across threads, hence the `Send + Sync` bounds.
unsafe impl<T: Send + Sync> Sync for SnapLock<T> {}
unsafe impl<T: Send> Send for SnapLock<T> {}

const WRITER_BIT: u32 = 1;

struct SnapGuard<'a, T> {
    lock: &'a SnapLock<T>,
}

impl<T> std::ops::Deref for SnapGuard<'_, T> {
    type Target = Snapshot<T>;
    fn deref(&self) -> &Snapshot<T> {
        // Safety: the reader increment taken in `read()` keeps writers
        // out until this guard drops.
        unsafe { &*self.lock.slot.get() }
    }
}

impl<T> Drop for SnapGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.fetch_sub(2, Ordering::Release);
    }
}

impl<T> SnapLock<T> {
    fn new(snap: Arc<Snapshot<T>>) -> Self {
        SnapLock {
            state: AtomicU32::new(0),
            slot: UnsafeCell::new(snap),
        }
    }

    fn read(&self) -> SnapGuard<'_, T> {
        loop {
            let s = self.state.fetch_add(2, Ordering::Acquire);
            if s & WRITER_BIT == 0 {
                return SnapGuard { lock: self };
            }
            // A writer is mid-swap: back out and wait for it. The writer
            // section is a pointer swap, so spinning is the common case;
            // yield covers a preempted writer.
            self.state.fetch_sub(2, Ordering::Release);
            let mut spins = 0u32;
            while self.state.load(Ordering::Relaxed) & WRITER_BIT != 0 {
                spins += 1;
                if spins > 128 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Replaces the snapshot. Callers must already be serialized (the
    /// cell publishes only under its state mutex).
    fn set(&self, snap: Arc<Snapshot<T>>) {
        let prev = self.state.fetch_or(WRITER_BIT, Ordering::Acquire);
        debug_assert_eq!(prev & WRITER_BIT, 0, "publishers must be serialized");
        let mut spins = 0u32;
        while self.state.load(Ordering::Acquire) != WRITER_BIT {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Safety: writer bit held and all readers drained — exclusive.
        unsafe {
            *self.slot.get() = snap;
        }
        self.state.fetch_and(!WRITER_BIT, Ordering::Release);
    }
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// The atomically swapped read snapshot. Lock order: `state` is held
    /// while publishing; readers take the snap guard alone and always
    /// release it before touching `state`.
    published: SnapLock<T>,
    changed: Condvar,
}

impl<T> Inner<T> {
    /// Publishes the current state as a fresh snapshot. Callers hold the
    /// state mutex, so publications are totally ordered.
    fn publish(&self, st: &State<T>) {
        crate::metrics::note_publish();
        self.published.set(Arc::new(st.snapshot()));
    }
}

/// Type-erased garbage-collection interface; the runtime and the vacuum
/// hold tracked stores as `Weak<dyn Prune>` so one collector can prune
/// cells (or whole maps) of any value type.
pub trait Prune {
    /// See [`OCell::prune_below`].
    fn prune_below(&self, boundary: Version) -> usize;
}

impl<T> Prune for Inner<T> {
    fn prune_below(&self, boundary: Version) -> usize {
        let mut st = self.state.lock();
        let Some((&keep, _)) = st.versions.range(..=boundary).next_back() else {
            return 0;
        };
        let before = st.versions.len();
        st.versions
            .retain(|&v, slot| v >= keep || slot.locked_by.is_some());
        let reclaimed = before - st.versions.len();
        if reclaimed > 0 {
            st.rebuild_window();
            self.publish(&st);
        }
        reclaimed
    }
}

/// A software O-structure: one memory location, many ordered versions.
///
/// Cheap to clone (a handle); all clones refer to the same cell. Values
/// are stored once in an `Arc<T>`: the `_arc` load variants share that
/// allocation, while the plain load variants clone `T` out of it (so `T:
/// Clone` is only required where a copy is actually returned).
///
/// # Blocking semantics (§II-A of the paper)
///
/// * [`OCell::load_version`] blocks until the exact version exists and is
///   unlocked. Locks on *other* versions are ignored.
/// * [`OCell::load_latest`] blocks until some version ≤ the cap exists and
///   the highest such version is unlocked. It never falls back to an older
///   unlocked version — that would break ordering.
/// * [`OCell::store_version`] creates a version (versions are write-once).
/// * The `lock_` flavours additionally acquire the version's lock; locking
///   an already-locked version blocks.
/// * [`OCell::unlock_version`] releases the caller's lock and can
///   atomically create a successor version carrying the same value — the
///   rename step of hand-over-hand pipelining. The successor shares the
///   predecessor's value allocation, so rename chains cost no value
///   clones and compress to a single run in the read snapshot.
pub struct OCell<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for OCell<T> {
    fn clone(&self) -> Self {
        OCell {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for OCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OCell<T> {
    /// An empty cell (no versions yet; all loads block).
    pub fn new() -> Self {
        OCell {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    versions: BTreeMap::new(),
                    held: HashMap::new(),
                    window: Vec::new(),
                    window_complete: true,
                }),
                published: SnapLock::new(Arc::new(Snapshot::empty())),
                changed: Condvar::new(),
            }),
        }
    }

    /// A cell with one initial version.
    pub fn with_initial(version: Version, value: T) -> Self {
        let cell = Self::new();
        cell.store_version(version, value)
            .expect("fresh cell accepts any version");
        cell
    }

    /// `STORE-VERSION`: creates `version` holding `value` and wakes every
    /// blocked load. Versions are immutable once created.
    pub fn store_version(&self, version: Version, value: T) -> Result<(), OError> {
        self.store_version_arc(version, Arc::new(value))
    }

    /// `STORE-VERSION` from an existing allocation: shares `value` instead
    /// of re-boxing it (the zero-copy publish path).
    pub fn store_version_arc(&self, version: Version, value: Arc<T>) -> Result<(), OError> {
        let mut st = self.inner.state.lock();
        if st.versions.contains_key(&version) {
            return Err(OError::VersionExists(version));
        }
        st.versions.insert(
            version,
            Slot {
                value: Arc::clone(&value),
                locked_by: None,
            },
        );
        st.window_note_store(version, &value);
        self.inner.publish(&st);
        drop(st);
        self.inner.changed.notify_all();
        Ok(())
    }

    /// `LOAD-VERSION` returning the shared allocation: blocks until
    /// `version` exists and is unlocked, without cloning `T`.
    pub fn load_version_arc(&self, version: Version) -> Arc<T> {
        // The snap guard must drop before the state mutex is taken (the
        // explicit block), or a concurrent publisher draining readers
        // while holding the state mutex would deadlock with us.
        {
            let snap = self.inner.published.read();
            if let FastRead::Hit(_, value) = snap.read_exact(version) {
                return Arc::clone(value);
            }
        }
        let mut st = self.inner.state.lock();
        let mut timer = crate::metrics::WaitTimer::new();
        loop {
            if let Some(slot) = st.versions.get(&version) {
                if slot.locked_by.is_none() {
                    return Arc::clone(&slot.value);
                }
            }
            timer.note_wait();
            self.inner.changed.wait(&mut st);
        }
    }

    /// Non-blocking `LOAD-VERSION` returning the shared allocation.
    pub fn try_load_version_arc(&self, version: Version) -> Option<Arc<T>> {
        {
            let snap = self.inner.published.read();
            match snap.read_exact(version) {
                FastRead::Hit(_, value) => return Some(Arc::clone(value)),
                FastRead::Absent | FastRead::Locked => return None,
                FastRead::Unknown => {}
            }
        }
        let st = self.inner.state.lock();
        st.versions
            .get(&version)
            .filter(|s| s.locked_by.is_none())
            .map(|s| Arc::clone(&s.value))
    }

    /// `LOAD-LATEST` returning the shared allocation: blocks until some
    /// version ≤ `cap` exists and the newest such version is unlocked.
    pub fn load_latest_arc(&self, cap: Version) -> (Version, Arc<T>) {
        {
            let snap = self.inner.published.read();
            if let FastRead::Hit(v, value) = snap.read_latest(cap) {
                return (v, Arc::clone(value));
            }
        }
        let mut st = self.inner.state.lock();
        let mut timer = crate::metrics::WaitTimer::new();
        loop {
            if let Some((&v, slot)) = st.versions.range(..=cap).next_back() {
                if slot.locked_by.is_none() {
                    return (v, Arc::clone(&slot.value));
                }
            }
            timer.note_wait();
            self.inner.changed.wait(&mut st);
        }
    }

    /// Non-blocking `LOAD-LATEST` returning the shared allocation.
    pub fn try_load_latest_arc(&self, cap: Version) -> Option<(Version, Arc<T>)> {
        {
            let snap = self.inner.published.read();
            match snap.read_latest(cap) {
                FastRead::Hit(v, value) => return Some((v, Arc::clone(value))),
                FastRead::Absent | FastRead::Locked => return None,
                FastRead::Unknown => {}
            }
        }
        let st = self.inner.state.lock();
        st.versions
            .range(..=cap)
            .next_back()
            .filter(|(_, s)| s.locked_by.is_none())
            .map(|(&v, s)| (v, Arc::clone(&s.value)))
    }

    /// The version `tid` currently holds locked, if any.
    pub fn held_by(&self, tid: TaskId) -> Option<Version> {
        self.inner.state.lock().held.get(&tid).copied()
    }

    /// Invariant oracle: cross-checks the lock bookkeeping both ways —
    /// every held-lock record must point at a version locked by exactly
    /// that task, and every locked version must have a matching held
    /// record — and then validates the published read snapshot against the
    /// version map: every run must cover exactly the contiguous versions
    /// it claims (sharing their value allocation), the window must cover
    /// every version above its floor, and the locked list must mirror the
    /// lock table. Returns the first inconsistency. The software twin of
    /// the simulator's lock-exclusion oracle; the stress harness's test
    /// suites call it after perturbed interleavings.
    pub fn check_invariants(&self) -> Result<(), String> {
        let st = self.inner.state.lock();
        for (&tid, &v) in &st.held {
            match st.versions.get(&v) {
                Some(slot) if slot.locked_by == Some(tid) => {}
                Some(slot) => {
                    return Err(format!(
                        "task {tid} records a lock on version {v}, but the \
                         version is held by {:?}",
                        slot.locked_by
                    ))
                }
                None => {
                    return Err(format!(
                        "task {tid} records a lock on version {v}, which does \
                         not exist"
                    ))
                }
            }
        }
        for (&v, slot) in &st.versions {
            if let Some(tid) = slot.locked_by {
                if st.held.get(&tid) != Some(&v) {
                    return Err(format!(
                        "version {v} is locked by task {tid}, which has no \
                         matching held record"
                    ));
                }
            }
        }
        // Snapshot-vs-truth cross-check. The publication happens under the
        // state mutex, so under this lock the published view must agree.
        let snap = self.inner.published.read();
        if snap.complete != st.window_complete || snap.runs.len() != st.window.len() {
            return Err("published snapshot lags the state window".to_string());
        }
        let mut covered = 0usize;
        let mut prev_hi: Option<Version> = None;
        for run in &snap.runs {
            if run.lo > run.hi {
                return Err(format!("run [{}, {}] is inverted", run.lo, run.hi));
            }
            if let Some(p) = prev_hi {
                if run.lo <= p {
                    return Err(format!("run [{}, {}] overlaps predecessor", run.lo, run.hi));
                }
            }
            prev_hi = Some(run.hi);
            // One ordered range pass per run instead of a per-version map
            // lookup: a million-rename run costs one linear walk, not 10^6
            // O(log n) probes, so the oracle stays usable on the long
            // chains the runs exist to compress.
            let span = (run.hi - run.lo + 1) as usize;
            let mut present = 0usize;
            for (&v, slot) in st.versions.range(run.lo..=run.hi) {
                present += 1;
                if !Arc::ptr_eq(&slot.value, &run.value) {
                    return Err(format!(
                        "run [{}, {}] does not share version {v}'s value",
                        run.lo, run.hi
                    ));
                }
            }
            if present != span {
                return Err(format!(
                    "run [{}, {}] claims {span} contiguous versions but only \
                     {present} exist",
                    run.lo, run.hi
                ));
            }
            covered += span;
        }
        let floor = snap.floor();
        let above_floor = st.versions.range(floor..).count();
        if covered != above_floor || (snap.complete && covered != st.versions.len()) {
            return Err(format!(
                "window covers {covered} versions but {above_floor} exist at or \
                 above its floor {floor} (complete={})",
                snap.complete
            ));
        }
        let mut locked: Vec<Version> = st.held.values().copied().collect();
        locked.sort_unstable();
        if snap.locked != locked {
            return Err(format!(
                "published locked set {:?} does not match lock table {:?}",
                snap.locked, locked
            ));
        }
        Ok(())
    }

    /// All existing versions, ascending (diagnostics / tests).
    pub fn versions(&self) -> Vec<Version> {
        self.inner.state.lock().versions.keys().copied().collect()
    }

    /// Number of live versions.
    pub fn version_count(&self) -> usize {
        self.inner.state.lock().versions.len()
    }

    /// Garbage collection: drops every version strictly older than the
    /// newest version ≤ `boundary`, i.e. the versions shadowed for every
    /// task whose cap is ≥ `boundary`. Locked versions are never dropped.
    /// Returns how many versions were reclaimed.
    ///
    /// Safety is the caller's contract (the runtime's rules 1–3, or the
    /// vacuum's reader watermark): no active or future task may load below
    /// `boundary` afterwards.
    pub fn prune_below(&self, boundary: Version) -> usize {
        Prune::prune_below(&*self.inner, boundary)
    }

    /// A type-erased weak handle for the runtime's collector or the
    /// background [`crate::vacuum::Vacuum`].
    pub fn prune_handle(&self) -> std::sync::Weak<dyn Prune + Send + Sync>
    where
        T: Send + Sync + 'static,
    {
        let arc: Arc<dyn Prune + Send + Sync> = Arc::clone(&self.inner) as _;
        Arc::downgrade(&arc)
    }

    /// Number of live handles to this cell (the strong count of the shared
    /// inner, including `self`). A container that indexes cells can use
    /// this to tell whether anyone outside the index still holds the cell:
    /// while the container's lock keeps new handles from being minted, a
    /// count of exactly one means the index entry is the only reference.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl<T: Clone> OCell<T> {
    /// `LOAD-VERSION`: blocks until `version` exists and is unlocked.
    pub fn load_version(&self, version: Version) -> T {
        // Clone `T` straight out of the published snapshot — no state
        // mutex, no Arc refcount traffic.
        {
            let snap = self.inner.published.read();
            if let FastRead::Hit(_, value) = snap.read_exact(version) {
                return (**value).clone();
            }
        }
        (*self.load_version_arc(version)).clone()
    }

    /// Non-blocking `LOAD-VERSION`: `None` if absent or locked.
    pub fn try_load_version(&self, version: Version) -> Option<T> {
        {
            let snap = self.inner.published.read();
            match snap.read_exact(version) {
                FastRead::Hit(_, value) => return Some((**value).clone()),
                FastRead::Absent | FastRead::Locked => return None,
                FastRead::Unknown => {}
            }
        }
        self.try_load_version_arc(version).map(|v| (*v).clone())
    }

    /// `LOAD-VERSION` with a timeout — mainly for tests that must detect a
    /// stall without hanging. `None` on timeout.
    pub fn load_version_timeout(&self, version: Version, dur: Duration) -> Option<T> {
        {
            let snap = self.inner.published.read();
            if let FastRead::Hit(_, value) = snap.read_exact(version) {
                return Some((**value).clone());
            }
        }
        let deadline = std::time::Instant::now() + dur;
        let mut st = self.inner.state.lock();
        let mut timer = crate::metrics::WaitTimer::new();
        loop {
            if let Some(slot) = st.versions.get(&version) {
                if slot.locked_by.is_none() {
                    return Some((*slot.value).clone());
                }
            }
            timer.note_wait();
            if self.inner.changed.wait_until(&mut st, deadline).timed_out() {
                return None;
            }
        }
    }

    /// `LOAD-LATEST`: blocks until some version ≤ `cap` exists and the
    /// newest such version is unlocked. Returns `(version, value)`.
    pub fn load_latest(&self, cap: Version) -> (Version, T) {
        {
            let snap = self.inner.published.read();
            if let FastRead::Hit(v, value) = snap.read_latest(cap) {
                return (v, (**value).clone());
            }
        }
        let (v, value) = self.load_latest_arc(cap);
        (v, (*value).clone())
    }

    /// Non-blocking `LOAD-LATEST`.
    pub fn try_load_latest(&self, cap: Version) -> Option<(Version, T)> {
        {
            let snap = self.inner.published.read();
            match snap.read_latest(cap) {
                FastRead::Hit(v, value) => return Some((v, (**value).clone())),
                FastRead::Absent | FastRead::Locked => return None,
                FastRead::Unknown => {}
            }
        }
        self.try_load_latest_arc(cap)
            .map(|(v, a)| (v, (*a).clone()))
    }

    /// `LOCK-LOAD-VERSION`: exact load + lock as `tid`. Blocks while the
    /// version is absent or locked (by anyone, including `tid`).
    pub fn lock_load_version(&self, version: Version, tid: TaskId) -> Result<T, OError> {
        if tid == 0 {
            return Err(OError::ReservedTaskId);
        }
        let mut st = self.inner.state.lock();
        let mut timer = crate::metrics::WaitTimer::new();
        loop {
            if let Some(slot) = st.versions.get_mut(&version) {
                if slot.locked_by.is_none() {
                    slot.locked_by = Some(tid);
                    let value = (*slot.value).clone();
                    st.held.insert(tid, version);
                    self.inner.publish(&st);
                    return Ok(value);
                }
            }
            timer.note_wait();
            self.inner.changed.wait(&mut st);
        }
    }

    /// Non-blocking `LOCK-LOAD-LATEST`: `None` when the newest version ≤
    /// `cap` is absent or already locked.
    pub fn try_lock_load_latest(&self, cap: Version, tid: TaskId) -> Option<(Version, T)> {
        if tid == 0 {
            return None;
        }
        let mut st = self.inner.state.lock();
        let v = st
            .versions
            .range(..=cap)
            .next_back()
            .filter(|(_, s)| s.locked_by.is_none())
            .map(|(&v, _)| v)?;
        let slot = st.versions.get_mut(&v).expect("just found");
        slot.locked_by = Some(tid);
        let value = (*slot.value).clone();
        st.held.insert(tid, v);
        self.inner.publish(&st);
        Some((v, value))
    }

    /// `LOCK-LOAD-LATEST`: capped load + lock as `tid`.
    /// Returns `(version, value)`.
    pub fn lock_load_latest(&self, cap: Version, tid: TaskId) -> Result<(Version, T), OError> {
        if tid == 0 {
            return Err(OError::ReservedTaskId);
        }
        let mut st = self.inner.state.lock();
        let mut timer = crate::metrics::WaitTimer::new();
        loop {
            let found = st
                .versions
                .range(..=cap)
                .next_back()
                .filter(|(_, s)| s.locked_by.is_none())
                .map(|(&v, _)| v);
            if let Some(v) = found {
                let slot = st.versions.get_mut(&v).expect("just found");
                slot.locked_by = Some(tid);
                let value = (*slot.value).clone();
                st.held.insert(tid, v);
                self.inner.publish(&st);
                return Ok((v, value));
            }
            timer.note_wait();
            self.inner.changed.wait(&mut st);
        }
    }

    /// `UNLOCK-VERSION`: releases `tid`'s lock on this cell; with
    /// `create = Some(vn)` also creates unlocked version `vn` carrying the
    /// just-unlocked value (the rename — sharing the value allocation).
    /// Wakes all waiters.
    pub fn unlock_version(&self, tid: TaskId, create: Option<Version>) -> Result<(), OError> {
        let mut st = self.inner.state.lock();
        let Some(vl) = st.held.remove(&tid) else {
            return Err(OError::NotLockOwner(tid));
        };
        let value = {
            let slot = st.versions.get_mut(&vl).expect("held version exists");
            debug_assert_eq!(slot.locked_by, Some(tid));
            slot.locked_by = None;
            Arc::clone(&slot.value)
        };
        if let Some(vn) = create {
            if st.versions.contains_key(&vn) {
                // Roll the unlock forward anyway; the create is the error.
                self.inner.publish(&st);
                drop(st);
                self.inner.changed.notify_all();
                return Err(OError::VersionExists(vn));
            }
            st.versions.insert(
                vn,
                Slot {
                    value: Arc::clone(&value),
                    locked_by: None,
                },
            );
            st.window_note_store(vn, &value);
        }
        self.inner.publish(&st);
        drop(st);
        self.inner.changed.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    const T50: Duration = Duration::from_millis(200);

    #[test]
    fn store_then_load_exact() {
        let c = OCell::new();
        c.store_version(3, 42).unwrap();
        assert_eq!(c.load_version(3), 42);
        c.check_invariants().unwrap();
    }

    #[test]
    fn versions_are_write_once() {
        let c = OCell::new();
        c.store_version(1, 5).unwrap();
        assert_eq!(c.store_version(1, 6), Err(OError::VersionExists(1)));
        assert_eq!(c.load_version(1), 5);
    }

    #[test]
    fn load_blocks_until_store() {
        let c = OCell::new();
        let c2 = c.clone();
        let t = thread::spawn(move || c2.load_version(1));
        thread::sleep(Duration::from_millis(20));
        c.store_version(1, 9).unwrap();
        assert_eq!(t.join().unwrap(), 9);
    }

    #[test]
    fn out_of_order_creation() {
        let c = OCell::new();
        c.store_version(2, 22).unwrap();
        assert_eq!(c.try_load_version(2), Some(22));
        assert_eq!(c.try_load_version(1), None, "version 1 not created yet");
        c.store_version(1, 11).unwrap();
        assert_eq!(c.load_version(1), 11);
        assert_eq!(c.versions(), vec![1, 2]);
        c.check_invariants().unwrap();
    }

    #[test]
    fn load_latest_caps() {
        let c = OCell::new();
        for v in [2u64, 5, 9] {
            c.store_version(v, v as u32).unwrap();
        }
        assert_eq!(c.load_latest(9), (9, 9));
        assert_eq!(c.load_latest(8), (5, 5));
        assert_eq!(c.load_latest(2), (2, 2));
        assert_eq!(c.try_load_latest(1), None);
    }

    #[test]
    fn locked_version_blocks_exact_loads_only() {
        let c = OCell::new();
        c.store_version(1, 10).unwrap();
        c.store_version(2, 20).unwrap();
        c.lock_load_version(1, 7).unwrap();
        assert_eq!(c.try_load_version(1), None, "locked");
        assert_eq!(
            c.try_load_version(2),
            Some(20),
            "other versions ignore the lock"
        );
        c.unlock_version(7, None).unwrap();
        assert_eq!(c.try_load_version(1), Some(10));
    }

    #[test]
    fn load_latest_blocks_on_locked_latest() {
        let c = OCell::new();
        c.store_version(1, 10).unwrap();
        c.store_version(5, 50).unwrap();
        c.lock_load_version(5, 9).unwrap();
        assert_eq!(c.try_load_latest(7), None, "latest ≤ 7 is locked");
        assert_eq!(c.try_load_latest(4), Some((1, 10)));
    }

    #[test]
    fn unlock_rename_orders_a_follower() {
        let c = OCell::with_initial(1, 77u32);
        let (v1, _) = c.lock_load_latest(1, 1).unwrap();
        assert_eq!(v1, 1);
        let c2 = c.clone();
        let follower = thread::spawn(move || c2.lock_load_latest(2, 2).unwrap());
        thread::sleep(Duration::from_millis(20));
        // Predecessor renames on unlock; follower locks version 2.
        c.unlock_version(1, Some(2)).unwrap();
        let (v2, val) = follower.join().unwrap();
        assert_eq!((v2, val), (2, 77));
        c.unlock_version(2, None).unwrap();
    }

    #[test]
    fn unlock_requires_ownership() {
        let c = OCell::with_initial(1, 0u32);
        assert_eq!(c.unlock_version(9, None), Err(OError::NotLockOwner(9)));
        c.lock_load_version(1, 3).unwrap();
        assert_eq!(c.unlock_version(4, None), Err(OError::NotLockOwner(4)));
        c.unlock_version(3, None).unwrap();
    }

    #[test]
    fn held_by_tracks_lock() {
        let c = OCell::with_initial(4, 0u32);
        assert_eq!(c.held_by(2), None);
        c.lock_load_version(4, 2).unwrap();
        assert_eq!(c.held_by(2), Some(4));
        c.unlock_version(2, None).unwrap();
        assert_eq!(c.held_by(2), None);
    }

    #[test]
    fn invariants_hold_through_lock_lifecycle() {
        let c = OCell::with_initial(1, 0u32);
        c.check_invariants().unwrap();
        c.lock_load_version(1, 3).unwrap();
        c.check_invariants().unwrap();
        c.unlock_version(3, Some(2)).unwrap();
        c.check_invariants().unwrap();
        c.lock_load_version(2, 4).unwrap();
        c.prune_below(2);
        c.check_invariants().unwrap();
        c.unlock_version(4, None).unwrap();
        c.check_invariants().unwrap();
    }

    #[test]
    fn timeout_detects_stall() {
        let c: OCell<u32> = OCell::new();
        assert_eq!(c.load_version_timeout(1, Duration::from_millis(30)), None);
        c.store_version(1, 1).unwrap();
        assert_eq!(c.load_version_timeout(1, T50), Some(1));
    }

    #[test]
    fn prune_below_keeps_newest_at_or_under_boundary() {
        let c = OCell::new();
        for v in 1..=10u64 {
            c.store_version(v, v as u32).unwrap();
        }
        let reclaimed = c.prune_below(7);
        assert_eq!(reclaimed, 6, "versions 1..=6 dropped, 7 kept");
        assert_eq!(c.versions(), vec![7, 8, 9, 10]);
        // A task with cap 7 still gets the right answer.
        assert_eq!(c.load_latest(7), (7, 7));
        c.check_invariants().unwrap();
    }

    #[test]
    fn prune_spares_locked_versions() {
        let c = OCell::new();
        for v in 1..=5u64 {
            c.store_version(v, v as u32).unwrap();
        }
        c.lock_load_version(2, 8).unwrap();
        c.prune_below(5);
        assert_eq!(c.versions(), vec![2, 5], "locked version 2 survives");
        c.check_invariants().unwrap();
        c.unlock_version(8, None).unwrap();
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let c: OCell<u64> = OCell::new();
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                // Each consumer waits for its producer's version.
                c.load_version(t)
            }));
        }
        for t in (1..=8u64).rev() {
            let c = c.clone();
            thread::spawn(move || c.store_version(t, t * 100).unwrap());
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), (i as u64 + 1) * 100);
        }
    }

    #[test]
    fn exact_entry_chain_orders_threads() {
        // N threads pipeline through one cell in task order regardless of
        // OS scheduling: each locks exactly its own entry version, which
        // only its predecessor's rename creates.
        let c = OCell::with_initial(2, 0u64);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for tid in 2..=9u64 {
            let c = c.clone();
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                c.lock_load_version(tid, tid).unwrap();
                order.lock().push(tid);
                c.unlock_version(tid, Some(tid + 1)).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), (2..=9u64).collect::<Vec<_>>());
    }

    #[test]
    fn rename_chain_compresses_to_one_run() {
        // A long rename pipeline shares one allocation and one run; every
        // intermediate version stays loadable on the fast path.
        let c = OCell::with_initial(1, 7u32);
        for tid in 1..=200u64 {
            c.lock_load_version(tid, tid).unwrap();
            c.unlock_version(tid, Some(tid + 1)).unwrap();
        }
        assert_eq!(c.version_count(), 201);
        c.check_invariants().unwrap();
        for v in [1u64, 50, 199, 201] {
            assert_eq!(c.try_load_version(v), Some(7));
        }
        let a = c.load_version_arc(1);
        let b = c.load_version_arc(201);
        assert!(Arc::ptr_eq(&a, &b), "renames share the value allocation");
    }

    #[test]
    fn window_overflow_falls_back_to_slow_path() {
        // >WINDOW_RUNS distinct-value versions: old versions leave the
        // published window but remain loadable (slow path), and lookups
        // above the floor stay authoritative.
        let c = OCell::new();
        let n = (WINDOW_RUNS as u64) * 3;
        for v in 1..=n {
            c.store_version(v * 2, v as u32).unwrap(); // gaps: no coalescing
        }
        c.check_invariants().unwrap();
        for v in 1..=n {
            assert_eq!(c.try_load_version(v * 2), Some(v as u32));
            assert_eq!(c.try_load_version(v * 2 + 1), None);
        }
        assert_eq!(c.load_latest(u64::MAX), (n * 2, n as u32));
        assert_eq!(c.try_load_latest(1), None);
    }

    #[test]
    fn arc_loads_share_the_allocation() {
        let c = OCell::with_initial(3, String::from("value"));
        let a = c.load_latest_arc(10).1;
        let b = c.try_load_version_arc(3).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, "value");
    }
}
