//! The Figure 1 library API: `versioned<T>`.

use crate::cell::OCell;
use crate::error::OError;
use crate::{TaskId, Version};

/// A versioned variable with the paper's library-level API (Fig. 1,
/// right-hand column): task-centric method names that map one-to-one onto
/// the O-structure instructions, with the cell itself remembering which
/// version each task holds locked (so `unlock_ver(tid, tid + 1)` needs no
/// version argument).
///
/// ```
/// use ostructs_core::Versioned;
///
/// // versioned<node_t*> next = init();
/// let next: Versioned<u32> = Versioned::init(1, 0);
/// // task 1: pin the head version, rename for task 2, done.
/// assert_eq!(next.lock_load_ver(1, 1).unwrap(), 0);
/// next.unlock_ver(1, Some(2)).unwrap();
/// // task 2 proceeds through version 2 (created by the rename above) and
/// // publishes its modification as a fresh version.
/// assert_eq!(next.lock_load_last(2, 2).unwrap(), (2, 0));
/// next.store_ver_at(3, 0xbeef).unwrap();
/// next.unlock_ver(2, None).unwrap();
/// assert_eq!(next.load_last(3).1, 0xbeef);
/// // an older reader still sees its snapshot
/// assert_eq!(next.load_last(2).1, 0);
/// ```
pub struct Versioned<T> {
    cell: OCell<T>,
}

impl<T> Clone for Versioned<T> {
    fn clone(&self) -> Self {
        Versioned {
            cell: self.cell.clone(),
        }
    }
}

impl<T: Clone> Default for Versioned<T> {
    fn default() -> Self {
        Versioned { cell: OCell::new() }
    }
}

impl<T: Clone> Versioned<T> {
    /// A variable with no versions (all loads block until a store).
    pub fn new() -> Self {
        Self::default()
    }

    /// A variable with one initial version.
    pub fn init(version: Version, value: T) -> Self {
        Versioned {
            cell: OCell::with_initial(version, value),
        }
    }

    /// The underlying cell (for mixing APIs).
    pub fn cell(&self) -> &OCell<T> {
        &self.cell
    }

    /// `STORE-VERSION` at the task's own id: `store_ver(n, tid)` of Fig. 1.
    pub fn store_ver(&self, value: T, tid: TaskId) -> Result<(), OError> {
        self.cell.store_version(tid, value)
    }

    /// `STORE-VERSION` at an explicit version.
    pub fn store_ver_at(&self, version: Version, value: T) -> Result<(), OError> {
        self.cell.store_version(version, value)
    }

    /// `LOAD-VERSION`: get a specific version (blocking).
    pub fn load_ver(&self, version: Version) -> T {
        self.cell.load_version(version)
    }

    /// `LOAD-VERSION` without cloning: the shared allocation.
    pub fn load_ver_arc(&self, version: Version) -> std::sync::Arc<T> {
        self.cell.load_version_arc(version)
    }

    /// `LOAD-LATEST` capped at `tid`: the task's snapshot view.
    pub fn load_last(&self, tid: TaskId) -> (Version, T) {
        self.cell.load_latest(tid)
    }

    /// `LOAD-LATEST` without cloning: the shared allocation.
    pub fn load_last_arc(&self, tid: TaskId) -> (Version, std::sync::Arc<T>) {
        self.cell.load_latest_arc(tid)
    }

    /// `lock_load_ver(tid)` of Fig. 1: get *and lock* a specific version.
    pub fn lock_load_ver(&self, version: Version, tid: TaskId) -> Result<T, OError> {
        self.cell.lock_load_version(version, tid)
    }

    /// `lock_load_last(tid)` of Fig. 1: get and lock the latest version the
    /// task may see, blocking behind an older task's lock.
    pub fn lock_load_last(&self, cap: Version, tid: TaskId) -> Result<(Version, T), OError> {
        self.cell.lock_load_latest(cap, tid)
    }

    /// `unlock_ver(tid, vn)` of Fig. 1: release the task's lock on this
    /// variable, optionally renaming (creating `vn` with the same value).
    pub fn unlock_ver(&self, tid: TaskId, create: Option<Version>) -> Result<(), OError> {
        self.cell.unlock_version(tid, create)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fig1_insert_end_pipeline() {
        // The Fig. 1 example: concurrent `insert_end` tasks appending to a
        // linked list, pipelined by versioned `next` pointers. The figure
        // assumes a non-empty list, so we start with a sentinel node; every
        // task then *passes* the root (renaming it for its successor) and
        // *stops* at a fresh tail cell (store without rename).
        struct Node {
            value: u32,
            next: Versioned<Option<Arc<Node>>>,
        }

        let first_tid = 2u64;
        // The sentinel's tail cell starts below the first task's id so the
        // first appender's store (at its own id) cannot collide.
        let sentinel = Arc::new(Node {
            value: 0,
            next: Versioned::init(first_tid - 1, None),
        });
        let root: Versioned<Option<Arc<Node>>> =
            Versioned::init(first_tid, Some(Arc::clone(&sentinel)));

        let insert_end = |tid: u64, value: u32, root: Versioned<Option<Arc<Node>>>| {
            // Enter at this task's exact entry version, then hand-over-hand.
            let mut prev = root;
            let mut cur = prev.lock_load_ver(tid, tid).unwrap();
            loop {
                let node = cur.expect("sentinel guarantees at least one node");
                let (_, nxt) = node.next.lock_load_last(tid, tid).unwrap();
                // Release the trailing cell, renamed for the next task.
                prev.unlock_ver(tid, Some(tid + 1)).unwrap();
                prev = node.next.clone();
                match nxt {
                    Some(_) => cur = nxt,
                    None => break,
                }
            }
            // `prev` is the tail cell (locked, value None): append here.
            let node = Arc::new(Node {
                value,
                next: Versioned::new(),
            });
            node.next.store_ver_at(tid, None).unwrap();
            prev.store_ver(Some(Arc::clone(&node)), tid).unwrap();
            prev.unlock_ver(tid, None).unwrap();
        };

        let mut handles = Vec::new();
        for tid in first_tid..first_tid + 8 {
            let root = root.clone();
            handles.push(thread::spawn(move || {
                insert_end(tid, tid as u32 * 10, root)
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        // Walk the final list: values must be in task order — the output of
        // the parallel execution is identical to the sequential one.
        let mut out = Vec::new();
        let (_, mut cur) = root.load_last(u64::MAX);
        while let Some(node) = cur {
            if node.value != 0 {
                out.push(node.value);
            }
            (_, cur) = node.next.load_last(u64::MAX);
        }
        assert_eq!(out, (2..10u32).map(|t| t * 10).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_isolation_for_readers() {
        let v = Versioned::init(1, 100u32);
        v.store_ver_at(5, 500).unwrap();
        // A reader with cap 4 sees the old value even after version 5
        // exists — write-after-read eliminated by renaming.
        assert_eq!(v.load_last(4), (1, 100));
        assert_eq!(v.load_last(5), (5, 500));
    }
}
