//! Epoch-watermark reclamation: the reader registry and the background
//! vacuum.
//!
//! The paper's §III-B garbage collector assumes the `ORuntime` execution
//! model (task ids = versions, `TASK-BEGIN`/`TASK-END` reported to the
//! memory system). Free-threaded users of [`crate::OCell`] /
//! [`crate::map::OMap`] — long-lived services where readers come and go —
//! need the MVCC equivalent: a registry of live readers pinning their
//! snapshot caps, and a background **vacuum** pruning versions strictly
//! below the oldest pinned cap (the *watermark*). This is the
//! `running_transactions` + `Vacuum` pattern of xdb's `VersionManager`.
//!
//! Protocol:
//!
//! 1. Writers allocate versions from the registry's monotone
//!    [`ReaderRegistry::next_version`] clock (or advance it past
//!    externally chosen versions with [`ReaderRegistry::advance_to`]).
//! 2. Readers call [`ReaderRegistry::pin`] *before* choosing a snapshot
//!    cap and hold the returned [`ReaderGuard`] for the duration; the cap
//!    is the guard's pinned version. Dropping the guard unpins.
//! 3. The [`Vacuum`] periodically computes the watermark — the oldest
//!    pinned cap, or the current clock when no reader is live — and calls
//!    [`crate::cell::Prune::prune_below`] on every tracked store.
//!    `prune_below` keeps the newest version ≤ the boundary, so a reader
//!    pinned exactly *at* the watermark still resolves every load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::cell::Prune;
use crate::Version;

/// Registry of live readers; the source of the vacuum's watermark and of
/// writers' monotone versions.
///
/// Cheap to clone (a handle); all clones share one registry.
pub struct ReaderRegistry {
    inner: Arc<RegistryInner>,
}

struct RegistryInner {
    /// Monotone version clock: the next version a writer should use.
    clock: AtomicU64,
    /// Multiset of pinned caps (a cap may be pinned by several readers);
    /// each pin carries its creation instant so pin ages are observable
    /// while the guard is still parked.
    pinned: Mutex<std::collections::BTreeMap<Version, Vec<Instant>>>,
    /// Completed pin lifetimes, recorded at unpin.
    pin_age_us: Mutex<osim_metrics::Histogram>,
}

impl Clone for ReaderRegistry {
    fn clone(&self) -> Self {
        ReaderRegistry {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Default for ReaderRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ReaderRegistry {
    /// An empty registry with the version clock at 1 (version 0 is the
    /// conventional "initial value" version).
    pub fn new() -> Self {
        ReaderRegistry {
            inner: Arc::new(RegistryInner {
                clock: AtomicU64::new(1),
                pinned: Mutex::new(std::collections::BTreeMap::new()),
                pin_age_us: Mutex::new(osim_metrics::Histogram::new()),
            }),
        }
    }

    /// Allocates the next writer version (monotone, never reused).
    ///
    /// Allocate-then-publish: a reader pinning between the allocation and
    /// the store may watch version ≤ its cap *appear* (its observed
    /// latest version only ever grows toward the cap — reclamation safety
    /// is unaffected). A single writer wanting pin-stable snapshots can
    /// instead publish at [`ReaderRegistry::current`] and then
    /// [`ReaderRegistry::advance_to`] it, so caps only ever cover
    /// published versions.
    pub fn next_version(&self) -> Version {
        self.inner.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The newest version the clock has moved past (i.e. every allocated
    /// version is `< current()`).
    pub fn current(&self) -> Version {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Advances the clock to at least `version + 1`, for writers that
    /// choose versions externally (e.g. task ids). Never moves backwards.
    pub fn advance_to(&self, version: Version) {
        self.inner.clock.fetch_max(version + 1, Ordering::Relaxed);
    }

    /// Pins the newest allocated version as a snapshot cap and returns
    /// the guard holding it live. Read with `guard.cap()` as the version
    /// cap; the vacuum will not reclaim anything such a read could
    /// observe until the guard drops. Writers that allocate *after* the
    /// pin get versions above the cap, so the snapshot is stable.
    pub fn pin(&self) -> ReaderGuard {
        // Pin first, read the clock inside the lock: a concurrent vacuum
        // computing the watermark serializes on the same mutex, so it can
        // never observe "no readers" after this reader chose its cap.
        let mut pinned = self.inner.pinned.lock();
        let cap = self.inner.clock.load(Ordering::Relaxed).saturating_sub(1);
        pinned.entry(cap).or_default().push(Instant::now());
        drop(pinned);
        ReaderGuard {
            registry: self.clone(),
            cap,
        }
    }

    /// Pins an explicit cap (for readers replaying a historical snapshot
    /// they know is still live).
    pub fn pin_at(&self, cap: Version) -> ReaderGuard {
        self.inner
            .pinned
            .lock()
            .entry(cap)
            .or_default()
            .push(Instant::now());
        ReaderGuard {
            registry: self.clone(),
            cap,
        }
    }

    /// The reclamation boundary: the oldest pinned cap, or the current
    /// clock when no reader is live. Versions strictly below the newest
    /// version ≤ this value are unreachable by any current or future
    /// reader.
    pub fn watermark(&self) -> Version {
        let pinned = self.inner.pinned.lock();
        match pinned.keys().next() {
            Some(&oldest) => oldest,
            None => self.inner.clock.load(Ordering::Relaxed),
        }
    }

    /// Number of live reader guards.
    pub fn live_readers(&self) -> usize {
        self.inner.pinned.lock().values().map(Vec::len).sum()
    }

    /// How far the version clock has run ahead of the reclamation
    /// boundary: 0 when no reader holds the watermark back, growing while
    /// a parked guard pins an old cap and writers keep allocating. The
    /// software analogue of Louvre-style version-table occupancy.
    pub fn watermark_lag(&self) -> u64 {
        self.current().saturating_sub(self.watermark())
    }

    /// Pin-age distribution in microseconds: completed pin lifetimes plus
    /// the *current* age of every live pin, so a parked guard is visible
    /// before it unpins.
    pub fn pin_ages_us(&self) -> osim_metrics::Histogram {
        let mut h = self.inner.pin_age_us.lock().clone();
        let pinned = self.inner.pinned.lock();
        for pins in pinned.values() {
            for t0 in pins {
                h.record(t0.elapsed().as_micros() as u64);
            }
        }
        h
    }

    fn unpin(&self, cap: Version) {
        let mut pinned = self.inner.pinned.lock();
        let age = if let Some(pins) = pinned.get_mut(&cap) {
            let age = pins.pop();
            if pins.is_empty() {
                pinned.remove(&cap);
            }
            age
        } else {
            None
        };
        drop(pinned);
        if let Some(t0) = age {
            self.inner
                .pin_age_us
                .lock()
                .record(t0.elapsed().as_micros() as u64);
        }
    }
}

/// RAII pin on a snapshot cap; see [`ReaderRegistry::pin`].
pub struct ReaderGuard {
    registry: ReaderRegistry,
    cap: Version,
}

impl ReaderGuard {
    /// The pinned snapshot cap — use it as the version cap for every load
    /// performed under this guard.
    pub fn cap(&self) -> Version {
        self.cap
    }
}

impl Drop for ReaderGuard {
    fn drop(&mut self) {
        self.registry.unpin(self.cap);
    }
}

/// Vacuum configuration.
#[derive(Debug, Clone)]
pub struct VacuumCfg {
    /// Sleep between passes.
    pub interval: Duration,
}

impl Default for VacuumCfg {
    fn default() -> Self {
        VacuumCfg {
            interval: Duration::from_millis(10),
        }
    }
}

/// Counters for one vacuum's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumStats {
    /// Passes executed (including ones that reclaimed nothing).
    pub passes: u64,
    /// Total versions reclaimed.
    pub reclaimed: u64,
    /// The boundary used by the most recent pass.
    pub last_watermark: Version,
}

struct VacuumShared {
    registry: ReaderRegistry,
    tracked: Mutex<Vec<Weak<dyn Prune + Send + Sync>>>,
    stats: Mutex<VacuumStats>,
    /// Per-pass duration in microseconds, merged into `osim-metrics`
    /// output via [`Vacuum::fill_registry`].
    pause_us: Mutex<osim_metrics::Histogram>,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl VacuumShared {
    fn pass(&self) -> u64 {
        let started = Instant::now();
        let boundary = self.registry.watermark();
        let cells: Vec<_> = {
            let mut tracked = self.tracked.lock();
            tracked.retain(|w| w.strong_count() > 0);
            tracked.clone()
        };
        let mut reclaimed = 0u64;
        for weak in cells {
            if let Some(cell) = weak.upgrade() {
                reclaimed += cell.prune_below(boundary) as u64;
            }
        }
        {
            let mut stats = self.stats.lock();
            stats.passes += 1;
            stats.reclaimed += reclaimed;
            stats.last_watermark = boundary;
        }
        let pause = started.elapsed().as_micros() as u64;
        self.pause_us.lock().record(pause);
        let g = global();
        g.passes.fetch_add(1, Ordering::Relaxed);
        g.reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        g.last_watermark.store(boundary, Ordering::Relaxed);
        g.watermark_lag
            .store(self.registry.watermark_lag(), Ordering::Relaxed);
        g.pause_us.lock().record(pause);
        if osim_metrics::host_trace_armed() {
            osim_metrics::host_trace_span("vacuum", "pass", 0, started);
        }
        reclaimed
    }
}

/// Process-global roll-up across every vacuum instance, so the scrape
/// plane can export vacuum activity without holding a handle on each
/// [`Vacuum`]. Per-instance telemetry stays on
/// [`Vacuum::fill_registry`] under the `ostructs_vacuum_*` names.
struct GlobalVacuum {
    passes: AtomicU64,
    reclaimed: AtomicU64,
    last_watermark: AtomicU64,
    watermark_lag: AtomicU64,
    pause_us: Mutex<osim_metrics::Histogram>,
}

fn global() -> &'static GlobalVacuum {
    static GLOBAL: std::sync::OnceLock<GlobalVacuum> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| GlobalVacuum {
        passes: AtomicU64::new(0),
        reclaimed: AtomicU64::new(0),
        last_watermark: AtomicU64::new(0),
        watermark_lag: AtomicU64::new(0),
        pause_us: Mutex::new(osim_metrics::Histogram::new()),
    })
}

/// Snapshots the process-global vacuum roll-up into `reg` under the
/// `osim_vacuum_*` family names.
pub fn fill_vacuum_registry(reg: &mut osim_metrics::Registry) {
    let g = global();
    reg.counter_add(
        "osim_vacuum_passes_total",
        &[],
        g.passes.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "osim_vacuum_reclaimed_total",
        &[],
        g.reclaimed.load(Ordering::Relaxed),
    );
    reg.gauge_set(
        "osim_vacuum_watermark",
        &[],
        g.last_watermark.load(Ordering::Relaxed) as f64,
    );
    reg.gauge_set(
        "osim_vacuum_watermark_lag",
        &[],
        g.watermark_lag.load(Ordering::Relaxed) as f64,
    );
    reg.hist_mut("osim_vacuum_pause_us", &[])
        .merge(&g.pause_us.lock());
}

/// Background reclamation daemon over a [`ReaderRegistry`].
///
/// ```
/// use std::time::Duration;
/// use ostructs_core::vacuum::{ReaderRegistry, Vacuum, VacuumCfg};
/// use ostructs_core::OCell;
///
/// let registry = ReaderRegistry::new();
/// let vac = Vacuum::start(
///     registry.clone(),
///     VacuumCfg { interval: Duration::from_millis(1) },
/// );
/// let cell = OCell::with_initial(0, 0u64);
/// vac.track(&cell);
/// for _ in 0..100 {
///     let v = registry.next_version();
///     cell.store_version(v, v).unwrap();
/// }
/// vac.run_pass(); // or just wait for the background cadence
/// assert_eq!(cell.version_count(), 1);
/// drop(vac); // clean shutdown: joins the background thread
/// ```
pub struct Vacuum {
    shared: Arc<VacuumShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Vacuum {
    /// Starts the background thread pruning every `cfg.interval`.
    pub fn start(registry: ReaderRegistry, cfg: VacuumCfg) -> Self {
        let shared = Arc::new(VacuumShared {
            registry,
            tracked: Mutex::new(Vec::new()),
            stats: Mutex::new(VacuumStats::default()),
            pause_us: Mutex::new(osim_metrics::Histogram::new()),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let bg = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("ostructs-vacuum".into())
            .spawn(move || loop {
                {
                    let mut stop = bg.stop.lock();
                    if !*stop {
                        let deadline = Instant::now() + cfg.interval;
                        let _ = bg.wake.wait_until(&mut stop, deadline);
                    }
                    if *stop {
                        return;
                    }
                }
                bg.pass();
            })
            .expect("spawn vacuum thread");
        Vacuum {
            shared,
            thread: Some(thread),
        }
    }

    /// Registers a prunable store (a cell, map, or anything exposing a
    /// [`Prune`] handle). Tracking is by weak reference — dropping the
    /// store untracks it.
    pub fn track<S: Prunable>(&self, store: &S) {
        self.shared.tracked.lock().push(store.prune_weak());
    }

    /// Runs one pass synchronously on the calling thread; returns the
    /// number of versions reclaimed.
    pub fn run_pass(&self) -> u64 {
        self.shared.pass()
    }

    /// Counters so far.
    pub fn stats(&self) -> VacuumStats {
        *self.shared.stats.lock()
    }

    /// The registry this vacuum reclaims against.
    pub fn registry(&self) -> &ReaderRegistry {
        &self.shared.registry
    }

    /// Folds the vacuum's telemetry into an `osim-metrics` registry:
    /// `ostructs_vacuum_passes_total`, `ostructs_vacuum_reclaimed_total`,
    /// `ostructs_vacuum_watermark`, the live
    /// `ostructs_vacuum_watermark_lag` (clock minus watermark — how much
    /// history a parked reader is holding back), the per-pass
    /// `ostructs_vacuum_pause_us` histogram, and the
    /// `ostructs_vacuum_reader_pin_age_us` pin-age distribution (live pins
    /// included).
    pub fn fill_registry(&self, reg: &mut osim_metrics::Registry) {
        let stats = self.stats();
        reg.counter_add("ostructs_vacuum_passes_total", &[], stats.passes);
        reg.counter_add("ostructs_vacuum_reclaimed_total", &[], stats.reclaimed);
        reg.gauge_set(
            "ostructs_vacuum_watermark",
            &[],
            stats.last_watermark as f64,
        );
        reg.gauge_set(
            "ostructs_vacuum_watermark_lag",
            &[],
            self.shared.registry.watermark_lag() as f64,
        );
        reg.hist_mut("ostructs_vacuum_pause_us", &[])
            .merge(&self.shared.pause_us.lock());
        reg.hist_mut("ostructs_vacuum_reader_pin_age_us", &[])
            .merge(&self.shared.registry.pin_ages_us());
    }

    /// Stops the background thread and joins it. Idempotent; also run by
    /// `Drop`.
    pub fn stop(&mut self) {
        *self.shared.stop.lock() = true;
        self.shared.wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Vacuum {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Anything the vacuum can track: exposes a weak, type-erased [`Prune`]
/// handle.
pub trait Prunable {
    fn prune_weak(&self) -> Weak<dyn Prune + Send + Sync>;
}

impl<T: Send + Sync + 'static> Prunable for crate::OCell<T> {
    fn prune_weak(&self) -> Weak<dyn Prune + Send + Sync> {
        self.prune_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OCell;

    fn fast_cfg() -> VacuumCfg {
        VacuumCfg {
            interval: Duration::from_millis(1),
        }
    }

    #[test]
    fn watermark_follows_oldest_pin() {
        let reg = ReaderRegistry::new();
        assert_eq!(reg.watermark(), 1, "clock starts at 1");
        for _ in 0..9 {
            reg.next_version();
        }
        assert_eq!(reg.watermark(), 10, "no readers: watermark = clock");
        let old = reg.pin();
        assert_eq!(old.cap(), 9, "caps at the newest allocated version");
        for _ in 0..5 {
            reg.next_version();
        }
        let newer = reg.pin();
        assert_eq!(newer.cap(), 14);
        assert_eq!(reg.watermark(), old.cap());
        drop(old);
        assert_eq!(reg.watermark(), newer.cap());
        drop(newer);
        assert_eq!(reg.watermark(), 15);
        assert_eq!(reg.live_readers(), 0);
    }

    #[test]
    fn duplicate_caps_unpin_one_at_a_time() {
        let reg = ReaderRegistry::new();
        let a = reg.pin();
        let b = reg.pin();
        assert_eq!(a.cap(), b.cap());
        assert_eq!(reg.live_readers(), 2);
        drop(a);
        assert_eq!(reg.watermark(), b.cap(), "second pin still holds");
        drop(b);
        assert_eq!(reg.live_readers(), 0);
    }

    #[test]
    fn advance_to_never_regresses() {
        let reg = ReaderRegistry::new();
        reg.advance_to(100);
        assert_eq!(reg.current(), 101);
        reg.advance_to(50);
        assert_eq!(reg.current(), 101);
    }

    #[test]
    fn vacuum_prunes_unpinned_history() {
        let reg = ReaderRegistry::new();
        let mut vac = Vacuum::start(reg.clone(), fast_cfg());
        let cell = OCell::with_initial(0, 0u64);
        vac.track(&cell);
        for _ in 0..50 {
            let v = reg.next_version();
            cell.store_version(v, v).unwrap();
        }
        let reclaimed = vac.run_pass();
        assert_eq!(reclaimed, 50, "all but the newest version reclaimed");
        assert_eq!(cell.version_count(), 1);
        cell.check_invariants().unwrap();
        vac.stop();
        let stats = vac.stats();
        assert!(stats.passes >= 1);
        assert_eq!(stats.reclaimed, 50);
    }

    #[test]
    fn vacuum_never_reclaims_pinned_snapshots() {
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(reg.clone(), fast_cfg());
        let cell = OCell::with_initial(0, 0u64);
        vac.track(&cell);
        let v1 = reg.next_version();
        cell.store_version(v1, 111).unwrap();
        let pin = reg.pin(); // caps at the clock after v1
        for _ in 0..20 {
            let v = reg.next_version();
            cell.store_version(v, v).unwrap();
        }
        vac.run_pass();
        // The pinned snapshot still resolves: newest version ≤ cap is v1.
        assert_eq!(cell.try_load_latest(pin.cap()), Some((v1, 111)));
        drop(pin);
        vac.run_pass();
        assert_eq!(cell.version_count(), 1, "history drains after unpin");
    }

    #[test]
    fn background_cadence_prunes_without_explicit_passes() {
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(reg.clone(), fast_cfg());
        let cell = OCell::with_initial(0, 0u64);
        vac.track(&cell);
        for _ in 0..100 {
            let v = reg.next_version();
            cell.store_version(v, v).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while cell.version_count() > 1 {
            assert!(Instant::now() < deadline, "vacuum never caught up");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn stop_is_clean_and_idempotent() {
        let reg = ReaderRegistry::new();
        let mut vac = Vacuum::start(reg, fast_cfg());
        vac.stop();
        vac.stop();
        assert!(vac.thread.is_none());
    }

    #[test]
    fn dropped_cells_are_untracked() {
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(reg, fast_cfg());
        {
            let cell = OCell::with_initial(0, 0u32);
            vac.track(&cell);
        }
        assert_eq!(vac.run_pass(), 0, "dead weak refs are skipped");
    }

    #[test]
    fn parked_reader_grows_watermark_lag() {
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(reg.clone(), fast_cfg());
        for _ in 0..5 {
            reg.next_version();
        }
        let parked = reg.pin();
        let mut m0 = osim_metrics::Registry::new();
        vac.fill_registry(&mut m0);
        let lag0 = m0.gauge("ostructs_vacuum_watermark_lag", &[]).unwrap();
        // Writers keep allocating while the guard stays parked: the lag
        // must grow with every allocation the pin holds back.
        for _ in 0..40 {
            reg.next_version();
        }
        std::thread::sleep(Duration::from_millis(2));
        let mut m1 = osim_metrics::Registry::new();
        vac.fill_registry(&mut m1);
        let lag1 = m1.gauge("ostructs_vacuum_watermark_lag", &[]).unwrap();
        assert!(
            lag1 >= lag0 + 40.0,
            "parked guard must make the lag grow: {lag0} -> {lag1}"
        );
        let ages = m1
            .hist("ostructs_vacuum_reader_pin_age_us", &[])
            .expect("pin-age histogram present");
        assert!(ages.count() >= 1, "live pin must appear in the age hist");
        drop(parked);
        let mut m2 = osim_metrics::Registry::new();
        vac.fill_registry(&mut m2);
        let lag2 = m2.gauge("ostructs_vacuum_watermark_lag", &[]).unwrap();
        assert_eq!(lag2, 0.0, "lag collapses once the guard drops");
    }

    #[test]
    fn global_rollup_ticks_on_every_pass() {
        let mut before = osim_metrics::Registry::new();
        fill_vacuum_registry(&mut before);
        let passes0 = before.counter("osim_vacuum_passes_total", &[]);

        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(reg.clone(), fast_cfg());
        let cell = OCell::with_initial(0, 0u64);
        vac.track(&cell);
        for _ in 0..10 {
            let v = reg.next_version();
            cell.store_version(v, v).unwrap();
        }
        vac.run_pass();
        vac.run_pass();

        let mut after = osim_metrics::Registry::new();
        fill_vacuum_registry(&mut after);
        assert!(after.counter("osim_vacuum_passes_total", &[]) >= passes0 + 2);
        assert!(after.counter("osim_vacuum_reclaimed_total", &[]) >= 10);
        let h = after.hist("osim_vacuum_pause_us", &[]).unwrap();
        assert!(h.count() >= 2);
        assert!(after.gauge("osim_vacuum_watermark", &[]).is_some());
        assert!(after.gauge("osim_vacuum_watermark_lag", &[]).is_some());
    }

    #[test]
    fn metrics_surface() {
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(reg.clone(), fast_cfg());
        let cell = OCell::with_initial(0, 0u64);
        vac.track(&cell);
        for _ in 0..10 {
            let v = reg.next_version();
            cell.store_version(v, v).unwrap();
        }
        vac.run_pass();
        let mut m = osim_metrics::Registry::new();
        vac.fill_registry(&mut m);
        assert!(m.counter("ostructs_vacuum_passes_total", &[]) >= 1);
        assert_eq!(m.counter("ostructs_vacuum_reclaimed_total", &[]), 10);
        let h = m.hist("ostructs_vacuum_pause_us", &[]).unwrap();
        assert!(h.count() >= 1);
    }
}
