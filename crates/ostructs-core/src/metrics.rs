//! Process-global live instrumentation of the store's real-thread hot
//! paths.
//!
//! Per-instance metrics (the vacuum's `fill_registry`) only cover objects
//! the caller holds; this module aggregates what the *whole process* does
//! to any cell or map — snapshot publications, blocking condvar waits,
//! shard-lock contention — so the scrape plane can export it without
//! threading a registry handle through every `OCell`. Recording is raw
//! relaxed atomics plus one pre-allocated histogram behind a mutex:
//! nothing allocates, and disarmed cost on the publish path is a single
//! `fetch_add`.

use osim_metrics::{Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Matches the default `OMap` shard count; maps with more shards fold the
/// excess into the last slot.
const TRACKED_SHARDS: usize = 64;

struct StoreMetrics {
    /// Snapshot publications (every store, lock, unlock, or prune that
    /// changed the published fast-read snapshot).
    publishes: AtomicU64,
    /// Operations that actually parked on a cell's condvar (fast-path
    /// reads and uncontended lock loads never count).
    blocking_waits: AtomicU64,
    blocking_wait_us: Mutex<Histogram>,
    /// Shard-index lock acquisitions that found the lock held.
    contention_total: AtomicU64,
    contention_by_shard: [AtomicU64; TRACKED_SHARDS],
}

fn store() -> &'static StoreMetrics {
    static STORE: OnceLock<StoreMetrics> = OnceLock::new();
    STORE.get_or_init(|| StoreMetrics {
        publishes: AtomicU64::new(0),
        blocking_waits: AtomicU64::new(0),
        blocking_wait_us: Mutex::new(Histogram::default()),
        contention_total: AtomicU64::new(0),
        contention_by_shard: std::array::from_fn(|_| AtomicU64::new(0)),
    })
}

#[inline]
pub(crate) fn note_publish() {
    store().publishes.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn note_shard_contention(shard: usize) {
    let m = store();
    m.contention_total.fetch_add(1, Ordering::Relaxed);
    m.contention_by_shard[shard.min(TRACKED_SHARDS - 1)].fetch_add(1, Ordering::Relaxed);
}

/// Times one potentially-blocking cell operation: `note_wait` is called
/// just before each condvar park, and the drop records the total blocked
/// duration (covering every return path of the enclosing function).
pub(crate) struct WaitTimer {
    started: Option<Instant>,
}

impl WaitTimer {
    pub(crate) fn new() -> Self {
        WaitTimer { started: None }
    }

    #[inline]
    pub(crate) fn note_wait(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
            store().blocking_waits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for WaitTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            let us = t0.elapsed().as_micros() as u64;
            store()
                .blocking_wait_us
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(us);
        }
    }
}

/// Snapshots the process-global store metrics into `reg` under the
/// `osim_store_*` family names.
pub fn fill_store_registry(reg: &mut Registry) {
    let m = store();
    reg.counter_add(
        "osim_store_snapshot_publish_total",
        &[],
        m.publishes.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "osim_store_blocking_waits_total",
        &[],
        m.blocking_waits.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "osim_store_lock_contention_total",
        &[],
        m.contention_total.load(Ordering::Relaxed),
    );
    {
        let h = m.blocking_wait_us.lock().unwrap_or_else(|e| e.into_inner());
        reg.hist_mut("osim_store_blocking_wait_us", &[]).merge(&h);
    }
    for (i, shard) in m.contention_by_shard.iter().enumerate() {
        let n = shard.load(Ordering::Relaxed);
        if n > 0 {
            reg.counter_add(
                "osim_store_shard_contention_total",
                &[("shard", &i.to_string())],
                n,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OCell;

    #[test]
    fn publishes_and_waits_surface_in_registry() {
        let mut before = Registry::new();
        fill_store_registry(&mut before);
        let publishes0 = before.counter("osim_store_snapshot_publish_total", &[]);
        let waits0 = before.counter("osim_store_blocking_waits_total", &[]);

        let cell: OCell<u64> = OCell::new();
        cell.store_version(1, 10).expect("store");
        cell.store_version(2, 20).expect("store");
        // Force a genuine blocked load: version 3 arrives from another
        // thread after this reader has parked.
        let writer = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                cell.store_version(3, 30).expect("store");
            })
        };
        assert_eq!(cell.load_version_arc(3).as_ref(), &30);
        writer.join().expect("writer");

        let mut after = Registry::new();
        fill_store_registry(&mut after);
        assert!(
            after.counter("osim_store_snapshot_publish_total", &[]) >= publishes0 + 3,
            "three stores must publish at least three snapshots"
        );
        assert!(
            after.counter("osim_store_blocking_waits_total", &[]) > waits0,
            "the parked load must count as a blocking wait"
        );
        let h = after
            .hist("osim_store_blocking_wait_us", &[])
            .expect("wait histogram present");
        assert!(h.count() >= 1);
    }

    #[test]
    fn shard_contention_counts_are_labeled() {
        note_shard_contention(3);
        note_shard_contention(3);
        note_shard_contention(9999);
        let mut reg = Registry::new();
        fill_store_registry(&mut reg);
        assert!(reg.counter("osim_store_lock_contention_total", &[]) >= 3);
        assert!(reg.counter("osim_store_shard_contention_total", &[("shard", "3")]) >= 2);
        // Out-of-range shards fold into the last tracked slot.
        assert!(reg.counter("osim_store_shard_contention_total", &[("shard", "63")]) >= 1);
    }
}
