//! Task-parallel runtime for software O-structures.
//!
//! Mirrors the execution model the paper's garbage collector assumes
//! (§III-B): a sequential program split into tasks whose ids reflect
//! program order, run across worker threads with static assignment, with
//! the runtime obeying the three GC rules — versions are accessed with
//! task ids, the memory system is told when tasks begin and end, and no
//! task is created below the oldest active id.
//!
//! Garbage collection here is the software rendition: tracked cells drop
//! every version shadowed for the whole active window (the hardware
//! two-list protocol, which exists because hardware cannot atomically
//! check reachability, collapses to a single atomic prune under the cell
//! mutex — the `osim-uarch` crate models the full shadowed/pending
//! mechanism).

use std::collections::BTreeSet;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::cell::{OCell, Prune};
use crate::TaskId;

/// Garbage-collection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Collection passes executed.
    pub collections: u64,
    /// Total versions reclaimed.
    pub reclaimed: u64,
}

struct RtState {
    active: BTreeSet<TaskId>,
    next_tid: TaskId,
    tracked: Vec<Weak<dyn Prune + Send + Sync>>,
    ends_since_gc: u64,
    stats: GcStats,
}

/// The task runtime.
///
/// ```
/// use ostructs_core::{ORuntime, OCell};
///
/// let rt = ORuntime::new(4);
/// let cell = OCell::with_initial(0, 0u32);
/// rt.track(&cell);
/// let results: Vec<_> = (0..8)
///     .map(|_| {
///         let cell = cell.clone();
///         Box::new(move |tid: u64| {
///             // version = task id (rule 1); the exact load pins the
///             // true dependency on the predecessor task
///             let prev = cell.load_version(tid - 1);
///             cell.store_version(tid, prev + 1).unwrap();
///         }) as Box<dyn FnOnce(u64) + Send>
///     })
///     .collect();
/// rt.run(results);
/// assert_eq!(cell.load_latest(u64::MAX).1, 8);
/// ```
pub struct ORuntime {
    state: Arc<Mutex<RtState>>,
    threads: usize,
    /// Run a collection pass every this many task completions
    /// (`None` = only on [`ORuntime::collect_now`]).
    gc_every: Option<u64>,
}

impl ORuntime {
    /// A runtime with `threads` workers and GC every 64 task completions.
    pub fn new(threads: usize) -> Self {
        Self::with_gc_interval(threads, Some(64))
    }

    /// A runtime with an explicit collection cadence.
    pub fn with_gc_interval(threads: usize, gc_every: Option<u64>) -> Self {
        ORuntime {
            state: Arc::new(Mutex::new(RtState {
                active: BTreeSet::new(),
                next_tid: 1,
                tracked: Vec::new(),
                ends_since_gc: 0,
                stats: GcStats::default(),
            })),
            threads: threads.max(1),
            gc_every,
        }
    }

    /// Registers a cell for garbage collection.
    pub fn track<T: Send + Sync + 'static>(&self, cell: &OCell<T>) {
        self.state.lock().tracked.push(cell.prune_handle());
    }

    /// Registers any prunable store (e.g. a whole [`crate::map::OMap`])
    /// for garbage collection.
    pub fn track_store<S: crate::vacuum::Prunable>(&self, store: &S) {
        self.state.lock().tracked.push(store.prune_weak());
    }

    /// Collection counters so far.
    pub fn gc_stats(&self) -> GcStats {
        self.state.lock().stats
    }

    /// The task id the next [`ORuntime::run`] will start at.
    pub fn next_tid(&self) -> TaskId {
        self.state.lock().next_tid
    }

    /// Runs `tasks` to completion. Task `i` gets id `next_tid + i` and runs
    /// on worker `i % threads`; each worker executes its share in order,
    /// and `TASK-END` of one task is reported only after `TASK-BEGIN` of
    /// the worker's next (so a queued task is always protected by an
    /// active lower id — the window can never slide past it).
    pub fn run(&self, tasks: Vec<Box<dyn FnOnce(TaskId) + Send>>) {
        let first = {
            let mut st = self.state.lock();
            let first = st.next_tid;
            st.next_tid += tasks.len() as TaskId;
            first
        };
        type Queue = Vec<(TaskId, Box<dyn FnOnce(TaskId) + Send>)>;
        let mut queues: Vec<Queue> = (0..self.threads).map(|_| Vec::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            queues[i % self.threads].push((first + i as TaskId, t));
        }
        std::thread::scope(|scope| {
            for queue in queues {
                if queue.is_empty() {
                    continue;
                }
                let state = Arc::clone(&self.state);
                let gc_every = self.gc_every;
                scope.spawn(move || {
                    let mut prev: Option<TaskId> = None;
                    for (tid, body) in queue {
                        state.lock().active.insert(tid);
                        if let Some(p) = prev.take() {
                            Self::end_task(&state, p, gc_every);
                        }
                        body(tid);
                        prev = Some(tid);
                    }
                    if let Some(p) = prev {
                        Self::end_task(&state, p, gc_every);
                    }
                });
            }
        });
    }

    fn end_task(state: &Mutex<RtState>, tid: TaskId, gc_every: Option<u64>) {
        let collect = {
            let mut st = state.lock();
            st.active.remove(&tid);
            st.ends_since_gc += 1;
            matches!(gc_every, Some(n) if st.ends_since_gc >= n)
        };
        if collect {
            Self::collect(state);
        }
    }

    /// Runs one collection pass immediately.
    pub fn collect_now(&self) {
        Self::collect(&self.state);
    }

    fn collect(state: &Mutex<RtState>) {
        // Snapshot the window and the tracked set without holding the lock
        // while pruning (pruning takes per-cell locks).
        let (boundary, cells) = {
            let mut st = state.lock();
            st.ends_since_gc = 0;
            let boundary = match st.active.first() {
                // Everything below the oldest active task is stale...
                Some(&oldest) => oldest,
                // ...or below the next id to be issued when idle.
                None => st.next_tid,
            };
            st.tracked.retain(|w| w.strong_count() > 0);
            (boundary, st.tracked.clone())
        };
        let mut reclaimed = 0u64;
        for weak in cells {
            if let Some(cell) = weak.upgrade() {
                reclaimed += cell.prune_below(boundary) as u64;
            }
        }
        let mut st = state.lock();
        st.stats.collections += 1;
        st.stats.reclaimed += reclaimed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn tasks_get_sequential_ids_and_all_run() {
        let rt = ORuntime::new(4);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce(TaskId) + Send>> = (0..16)
            .map(|_| {
                let seen = Arc::clone(&seen);
                Box::new(move |tid: TaskId| {
                    seen.lock().push(tid);
                }) as Box<dyn FnOnce(TaskId) + Send>
            })
            .collect();
        rt.run(tasks);
        let mut ids = seen.lock().clone();
        ids.sort_unstable();
        assert_eq!(ids, (1..=16).collect::<Vec<_>>());
        assert_eq!(rt.next_tid(), 17);
    }

    #[test]
    fn producer_consumer_pipeline() {
        let rt = ORuntime::new(4);
        let cell = OCell::with_initial(0, 0u64);
        rt.track(&cell);
        let total = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce(TaskId) + Send>> = (0..32)
            .map(|_| {
                let cell = cell.clone();
                let total = Arc::clone(&total);
                Box::new(move |tid: TaskId| {
                    let prev = cell.load_version(tid - 1);
                    cell.store_version(tid, prev + 1).unwrap();
                    total.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce(TaskId) + Send>
            })
            .collect();
        rt.run(tasks);
        assert_eq!(total.load(Ordering::Relaxed), 32);
        // Chained increments must be fully ordered.
        assert_eq!(cell.load_latest(u64::MAX), (32, 32));
    }

    #[test]
    fn gc_reclaims_old_versions() {
        let rt = ORuntime::with_gc_interval(2, Some(8));
        let cell = OCell::with_initial(0, 0u64);
        rt.track(&cell);
        let tasks: Vec<Box<dyn FnOnce(TaskId) + Send>> = (0..64)
            .map(|_| {
                let cell = cell.clone();
                Box::new(move |tid: TaskId| {
                    let prev = cell.load_version(tid - 1);
                    cell.store_version(tid, prev + 1).unwrap();
                }) as Box<dyn FnOnce(TaskId) + Send>
            })
            .collect();
        rt.run(tasks);
        rt.collect_now();
        let stats = rt.gc_stats();
        assert!(stats.collections >= 8, "{stats:?}");
        assert!(stats.reclaimed >= 56, "{stats:?}");
        assert_eq!(cell.version_count(), 1, "only the newest version survives");
        assert_eq!(cell.load_latest(u64::MAX), (64, 64));
    }

    #[test]
    fn gc_never_breaks_active_readers() {
        // A slow low-id reader pins its snapshot while later writers churn.
        let rt = ORuntime::with_gc_interval(4, Some(1));
        let cell = OCell::with_initial(0, 100u64);
        rt.track(&cell);
        let mut tasks: Vec<Box<dyn FnOnce(TaskId) + Send>> = Vec::new();
        // Task 1: slow reader with cap 0 (sees the initial value).
        {
            let cell = cell.clone();
            tasks.push(Box::new(move |tid: TaskId| {
                std::thread::sleep(std::time::Duration::from_millis(40));
                let (v, val) = cell.load_latest(tid - 1);
                assert_eq!((v, val), (0, 100), "snapshot survived the churn");
            }));
        }
        // Tasks 2..32: writers that trigger collection constantly.
        for _ in 0..31 {
            let cell = cell.clone();
            tasks.push(Box::new(move |tid: TaskId| {
                cell.store_version(tid, tid).unwrap();
            }));
        }
        rt.run(tasks);
    }

    #[test]
    fn manual_collection_with_no_tasks_uses_next_tid() {
        let rt = ORuntime::with_gc_interval(1, None);
        let cell = OCell::with_initial(0, 1u32);
        for v in 1..=5u64 {
            cell.store_version(v, v as u32).unwrap();
        }
        rt.track(&cell);
        rt.collect_now();
        // next_tid is 1, so the newest version ≤ 1 (version 1) is kept along
        // with everything newer.
        assert_eq!(cell.versions(), vec![1, 2, 3, 4, 5]);
        // After running tasks the boundary advances.
        let tasks: Vec<Box<dyn FnOnce(TaskId) + Send>> =
            vec![Box::new(|_| {}), Box::new(|_| {}), Box::new(|_| {})];
        rt.run(tasks);
        rt.collect_now();
        assert_eq!(cell.versions(), vec![4, 5]);
    }

    #[test]
    fn dropped_cells_are_untracked() {
        let rt = ORuntime::with_gc_interval(1, None);
        {
            let cell = OCell::with_initial(0, 0u32);
            rt.track(&cell);
        }
        rt.collect_now(); // must not panic on the dead weak ref
        assert_eq!(rt.gc_stats().collections, 1);
    }
}
