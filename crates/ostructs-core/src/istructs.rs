//! I-structures and M-structures on top of O-structures (Table I).
//!
//! The paper positions O-structures as a superset of the dataflow
//! synchronization structures: "Functional programming can use
//! O-structures as I-structures, reducing versioning to full/empty bits,
//! or as M-structures utilizing renaming as well." This module is that
//! reduction, built *only* from the six O-structure operations:
//!
//! * [`IVar`] — a write-once cell (Arvind's I-structure): one version,
//!   `get` blocks until `put` fills it.
//! * [`MVar`] — a mutable full/empty cell (Barth's M-structure): `take`
//!   *locks* the newest version (making the cell empty for every other
//!   taker — the lock is the empty bit), `put` publishes a fresh version
//!   and releases the lock. Renaming is what lets an unbounded sequence of
//!   take/put pairs reuse one location without ever overwriting a value a
//!   concurrent reader may still need.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cell::OCell;
use crate::error::OError;
use crate::{TaskId, Version};

/// A write-once synchronization variable (I-structure).
///
/// ```
/// use ostructs_core::istructs::IVar;
/// use std::thread;
///
/// let v: IVar<u32> = IVar::new();
/// let v2 = v.clone();
/// let reader = thread::spawn(move || v2.get());
/// v.put(42).unwrap();
/// assert_eq!(reader.join().unwrap(), 42);
/// assert!(v.put(43).is_err(), "I-structures are write-once");
/// ```
pub struct IVar<T> {
    cell: OCell<T>,
}

impl<T> Clone for IVar<T> {
    fn clone(&self) -> Self {
        IVar {
            cell: self.cell.clone(),
        }
    }
}

impl<T> Default for IVar<T> {
    fn default() -> Self {
        Self::new()
    }
}

const IVER: Version = 1;

/// The zero-copy surface needs no `T: Clone` — values move in through
/// `put` and come back out shared, so non-`Clone` payloads work too.
impl<T> IVar<T> {
    /// An empty (unwritten) I-structure.
    pub fn new() -> Self {
        IVar { cell: OCell::new() }
    }

    /// Fills the variable. Errors if already full ("versioning reduced to a
    /// full/empty bit": the single version is the full bit).
    pub fn put(&self, value: T) -> Result<(), OError> {
        self.cell.store_version(IVER, value)
    }

    /// Blocking read sharing the allocation instead of cloning — the
    /// broadcast-friendly flavor (N readers, one value, zero copies).
    pub fn get_arc(&self) -> Arc<T> {
        self.cell.load_version_arc(IVER)
    }

    /// Non-blocking shared read.
    pub fn try_get_arc(&self) -> Option<Arc<T>> {
        self.cell.try_load_version_arc(IVER)
    }

    /// True once `put` has happened.
    pub fn is_full(&self) -> bool {
        self.try_get_arc().is_some()
    }
}

impl<T: Clone> IVar<T> {
    /// Blocks until the variable is full, then returns its value. Any
    /// number of readers may get concurrently.
    pub fn get(&self) -> T {
        self.cell.load_version(IVER)
    }

    /// Non-blocking read.
    pub fn try_get(&self) -> Option<T> {
        self.cell.try_load_version(IVER)
    }
}

/// A mutable full/empty synchronization variable (M-structure).
///
/// `take` returns the current value and leaves the cell *empty*: the taker
/// holds the newest version's lock, so every other `take` stalls — exactly
/// the M-structure protocol, implemented with `LOCK-LOAD-LATEST`. `put`
/// stores a fresh (renamed) version and releases the taker's lock.
///
/// ```
/// use ostructs_core::istructs::MVar;
///
/// let m = MVar::full(10u32);
/// let (token, v) = m.take(1);
/// assert_eq!(v, 10);
/// assert!(m.try_take(2).is_none(), "empty while taken");
/// m.put(token, v + 1).unwrap();
/// assert_eq!(m.take(2).1, 11);
/// ```
pub struct MVar<T> {
    cell: OCell<T>,
    next_version: Arc<AtomicU64>,
}

impl<T> Clone for MVar<T> {
    fn clone(&self) -> Self {
        MVar {
            cell: self.cell.clone(),
            next_version: Arc::clone(&self.next_version),
        }
    }
}

/// Proof of a pending `take`; consumed by the matching [`MVar::put`].
#[must_use = "an MVar take must be balanced by a put"]
pub struct TakeToken {
    tid: TaskId,
}

impl<T: Clone> MVar<T> {
    /// A full M-structure holding `value`.
    pub fn full(value: T) -> Self {
        MVar {
            cell: OCell::with_initial(1, value),
            next_version: Arc::new(AtomicU64::new(2)),
        }
    }

    /// Takes the value, emptying the variable. Blocks while another taker
    /// holds it. `tid` identifies the taker (one outstanding take per tid).
    pub fn take(&self, tid: TaskId) -> (TakeToken, T) {
        let (_, value) = self
            .cell
            .lock_load_latest(Version::MAX, tid)
            .expect("valid tid");
        (TakeToken { tid }, value)
    }

    /// Non-blocking take: `None` if the variable is empty (someone holds
    /// it) — the `try`-flavor a lock-free algorithm would poll.
    pub fn try_take(&self, tid: TaskId) -> Option<(TakeToken, T)> {
        let (_, value) = self.cell.try_lock_load_latest(Version::MAX, tid)?;
        Some((TakeToken { tid }, value))
    }

    /// Refills the variable with `value`, completing the `take`. The fresh
    /// version is a rename: the taken value remains readable to snapshot
    /// readers at lower caps.
    pub fn put(&self, token: TakeToken, value: T) -> Result<(), OError> {
        let v = self.next_version.fetch_add(1, Ordering::Relaxed);
        self.cell.store_version(v, value)?;
        self.cell.unlock_version(token.tid, None)
    }

    /// Snapshot read at a version cap, ignoring full/empty state — the
    /// O-structure superpower that plain M-structures lack.
    pub fn read_snapshot(&self, cap: Version) -> Option<(Version, T)> {
        self.cell.try_load_latest(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn ivar_write_once_and_broadcast() {
        let v: IVar<String> = IVar::new();
        assert!(!v.is_full());
        let mut readers = Vec::new();
        for _ in 0..4 {
            let v = v.clone();
            readers.push(thread::spawn(move || v.get()));
        }
        thread::sleep(Duration::from_millis(10));
        v.put("hello".to_string()).unwrap();
        for r in readers {
            assert_eq!(r.join().unwrap(), "hello");
        }
        assert_eq!(v.put("again".into()), Err(OError::VersionExists(1)));
    }

    #[test]
    fn ivar_shared_reads_need_no_clone() {
        struct NoClone(u32);
        let v: IVar<NoClone> = IVar::new();
        assert!(!v.is_full());
        assert!(v.try_get_arc().is_none());
        v.put(NoClone(7)).unwrap();
        assert!(v.is_full());
        assert_eq!(v.get_arc().0, 7);
    }

    #[test]
    fn mvar_take_put_roundtrip() {
        let m = MVar::full(5u32);
        let (tok, v) = m.take(1);
        assert_eq!(v, 5);
        m.put(tok, 6).unwrap();
        let (tok, v) = m.take(1);
        assert_eq!(v, 6);
        m.put(tok, 7).unwrap();
    }

    #[test]
    fn mvar_excludes_concurrent_takers() {
        let m = Arc::new(MVar::full(0u64));
        // 8 threads each take, increment, put — a counter with no data
        // races despite no conventional mutex.
        let mut handles = Vec::new();
        for tid in 1..=8u64 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..25 {
                    let (tok, v) = m.take(tid);
                    m.put(tok, v + 1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (tok, v) = m.take(9);
        assert_eq!(v, 200);
        m.put(tok, v).unwrap();
    }

    #[test]
    fn mvar_snapshot_reads_see_history() {
        let m = MVar::full(10u32);
        let (tok, v) = m.take(1);
        m.put(tok, v + 10).unwrap();
        let (tok, v) = m.take(1);
        m.put(tok, v + 10).unwrap();
        // Version 1 = 10, version 2 = 20, version 3 = 30.
        assert_eq!(m.read_snapshot(1), Some((1, 10)));
        assert_eq!(m.read_snapshot(2), Some((2, 20)));
        assert_eq!(m.read_snapshot(u64::MAX), Some((3, 30)));
    }

    #[test]
    fn mvar_producer_consumer_rendezvous() {
        let m = Arc::new(MVar::full(0u32)); // 0 = "no message"
        let m2 = Arc::clone(&m);
        let consumer = thread::spawn(move || loop {
            let (tok, v) = m2.take(2);
            if v != 0 {
                m2.put(tok, 0).unwrap();
                return v;
            }
            m2.put(tok, v).unwrap();
            thread::yield_now();
        });
        thread::sleep(Duration::from_millis(5));
        let (tok, _) = m.take(1);
        m.put(tok, 99).unwrap();
        assert_eq!(consumer.join().unwrap(), 99);
    }
}
