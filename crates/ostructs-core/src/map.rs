//! A snapshot-isolated concurrent map (Table I, "Concurrent DS" row).
//!
//! [`OMap`] stores one [`OCell`] per key, each holding the full version
//! history of that key's value (`None` = absent at that version). Writers
//! publish at their task version; readers iterate a *consistent snapshot*
//! at any version cap without locks — "renaming to isolate readers from
//! writers", which the paper lists as the concurrent-data-structure use
//! case for O-structures.
//!
//! # Sharding
//!
//! The key → cell index is split across a fixed power-of-two array of
//! shards selected by an fxhash of the key, each shard a
//! `RwLock<BTreeMap>`. Writers to different keys land on different shards
//! with high probability and never serialize on a global lock; per-key
//! version history still lives in the cell, so the index locks stay
//! uncontended and *brief*. The lock discipline is strict: a shard lock
//! is only ever held to look up or create a cell *handle* — it is always
//! released before any `OCell` operation runs, because cell operations
//! can block indefinitely (waiting on an unwritten version) and a lock
//! held across one would wedge every unrelated key in the shard.
//!
//! # Values
//!
//! Values are stored once as `Arc<V>`. [`OMap::get_arc`] and
//! [`OMap::get_with`] read without cloning `V`; [`OMap::get`],
//! [`OMap::snapshot`], and [`OMap::scan`] are thin cloning wrappers kept
//! for the original API.
//!
//! Consistency contract (the same one the paper's runtime rules give):
//! writers use monotonically increasing versions (e.g. task ids), and a
//! snapshot at cap `c` reflects exactly the writes with version ≤ `c`.
//! Writers to the *same* key must be externally ordered (distinct
//! versions); writers to different keys need no coordination at all.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use crate::cell::{OCell, Prune};
use crate::error::OError;
use crate::Version;

/// Default shard count (power of two).
const DEFAULT_SHARDS: usize = 64;

/// Fx hash (the FireFox / rustc hasher): multiply-xor over machine words.
/// Inlined here because the crate must stay dependency-light and the
/// quality bar is only shard selection, not cryptography.
struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    fn new() -> Self {
        FxHasher { hash: 0 }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type ShardMap<K, V> = BTreeMap<K, OCell<Option<Arc<V>>>>;
type Shard<K, V> = RwLock<ShardMap<K, V>>;

struct MapInner<K, V> {
    /// `shards.len()` is a power of two; selection is `hash & mask`.
    shards: Box<[Shard<K, V>]>,
    mask: u64,
}

impl<K, V> MapInner<K, V>
where
    K: Hash,
{
    fn shard(&self, key: &K) -> (usize, &Shard<K, V>) {
        let mut h = FxHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() & self.mask) as usize;
        (idx, &self.shards[idx])
    }
}

/// Shard read lock with contention accounting: a failed try-lock counts
/// against the shard before falling back to the blocking acquire.
fn read_counted<K, V>(
    idx: usize,
    shard: &Shard<K, V>,
) -> parking_lot::RwLockReadGuard<'_, ShardMap<K, V>> {
    match shard.try_read() {
        Some(guard) => guard,
        None => {
            crate::metrics::note_shard_contention(idx);
            shard.read()
        }
    }
}

/// Shard write lock with contention accounting.
fn write_counted<K, V>(
    idx: usize,
    shard: &Shard<K, V>,
) -> parking_lot::RwLockWriteGuard<'_, ShardMap<K, V>> {
    match shard.try_write() {
        Some(guard) => guard,
        None => {
            crate::metrics::note_shard_contention(idx);
            shard.write()
        }
    }
}

impl<K, V> Prune for MapInner<K, V>
where
    K: Ord,
{
    /// Prunes every cell and drops cells absent in all surviving
    /// versions. Only non-blocking cell operations run under the shard
    /// write lock.
    fn prune_below(&self, boundary: Version) -> usize {
        let mut reclaimed = 0;
        for shard in self.shards.iter() {
            let mut w = shard.write();
            w.retain(|_, cell| {
                reclaimed += cell.prune_below(boundary);
                // Keep any cell someone outside the index still holds a
                // handle to: `cell_for` hands out handles after releasing
                // the shard lock, so a writer (or `wait_version` waiter)
                // may be about to store into a cell that currently looks
                // empty — dropping it would orphan that store and strand
                // its waiters. The shard write lock held here keeps new
                // handles from being minted, so strong count == 1 proves
                // the index entry is the only reference.
                cell.handle_count() > 1
                    // Otherwise keep the cell only if some snapshot at or
                    // after the boundary can still observe a value in it.
                    || cell
                        .versions()
                        .iter()
                        .any(|&v| cell.try_load_version(v).flatten().is_some() || v > boundary)
                    || cell.try_load_latest(Version::MAX).map(|(_, v)| v.is_some()) == Some(true)
            });
        }
        reclaimed
    }
}

/// A sharded concurrent map with versioned values and snapshot reads.
///
/// ```
/// use ostructs_core::map::OMap;
///
/// let m: OMap<&str, u32> = OMap::new();
/// m.insert("x", 1, 10).unwrap();          // version 1
/// m.insert("y", 2, 20).unwrap();          // version 2
/// m.remove("x", 3).unwrap();              // version 3
///
/// assert_eq!(m.get("x", 2), Some(10));    // snapshot before the remove
/// assert_eq!(m.get("x", 3), None);
/// assert_eq!(m.snapshot(2), vec![("x", 10), ("y", 20)]);
/// assert_eq!(m.snapshot(9), vec![("y", 20)]);
/// ```
pub struct OMap<K, V> {
    inner: Arc<MapInner<K, V>>,
}

impl<K, V> Clone for OMap<K, V> {
    fn clone(&self) -> Self {
        OMap {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Ord + Hash + Clone, V> Default for OMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Hash + Clone, V> OMap<K, V> {
    /// An empty map with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty map with at least `shards` shards (rounded up to a power
    /// of two). `with_shards(1)` degenerates to a single global lock —
    /// useful in tests that want maximum contention.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        OMap {
            inner: Arc::new(MapInner {
                shards: (0..n).map(|_| RwLock::new(BTreeMap::new())).collect(),
                mask: (n - 1) as u64,
            }),
        }
    }

    /// Number of shards the key space is split across.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Looks up or creates the cell for `key`, returning a *handle*; the
    /// shard lock is released before this returns, so callers may block
    /// on the cell freely.
    fn cell_for(&self, key: &K) -> OCell<Option<Arc<V>>> {
        let (idx, shard) = self.inner.shard(key);
        if let Some(cell) = read_counted(idx, shard).get(key) {
            return cell.clone();
        }
        let mut w = write_counted(idx, shard);
        w.entry(key.clone()).or_default().clone()
    }

    /// The cell for `key` if one exists (no creation).
    fn cell_get(&self, key: &K) -> Option<OCell<Option<Arc<V>>>> {
        let (idx, shard) = self.inner.shard(key);
        read_counted(idx, shard).get(key).cloned()
    }

    /// Publishes `key -> value` at `version`.
    pub fn insert(&self, key: K, version: Version, value: V) -> Result<(), OError> {
        self.insert_arc(key, version, Arc::new(value))
    }

    /// Publishes an already-shared value at `version` without re-boxing.
    pub fn insert_arc(&self, key: K, version: Version, value: Arc<V>) -> Result<(), OError> {
        self.cell_for(&key).store_version(version, Some(value))
    }

    /// Publishes the removal of `key` at `version` (an absence version —
    /// older snapshots still see the previous value).
    pub fn remove(&self, key: K, version: Version) -> Result<(), OError> {
        self.cell_for(&key).store_version(version, None)
    }

    /// The shared value of `key` in the snapshot at `cap`, without
    /// cloning `V` (non-blocking: a key with no version ≤ `cap` is simply
    /// absent from that snapshot).
    pub fn get_arc(&self, key: &K, cap: Version) -> Option<Arc<V>> {
        let cell = self.cell_get(key)?;
        cell.try_load_latest_arc(cap)
            .and_then(|(_, v)| (*v).clone())
    }

    /// Borrowed visitation: applies `f` to the value of `key` at `cap`
    /// without cloning or sharing it.
    pub fn get_with<R>(&self, key: &K, cap: Version, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.get_arc(key, cap).map(|v| f(&v))
    }

    /// Blocks until `key` has version `version` published, and returns
    /// the shared value at exactly that version (`None` = the version is
    /// a removal). The blocking analogue of [`OMap::get_arc`] for
    /// dataflow-style consumers waiting on a specific writer. No shard
    /// lock is held while blocked.
    pub fn wait_version(&self, key: K, version: Version) -> Option<Arc<V>> {
        let cell = self.cell_for(&key);
        (*cell.load_version_arc(version)).clone()
    }

    /// The full snapshot at `cap` as shared values, in key order.
    pub fn snapshot_arc(&self, cap: Version) -> Vec<(K, Arc<V>)> {
        let mut out = Vec::new();
        for shard in self.inner.shards.iter() {
            // Handles out first; the shard lock is not held across the
            // (non-blocking) cell reads below only for discipline
            // uniformity — try_* cannot block, but cheap index critical
            // sections are the point of sharding.
            let cells: Vec<(K, OCell<Option<Arc<V>>>)> = shard
                .read()
                .iter()
                .map(|(k, c)| (k.clone(), c.clone()))
                .collect();
            for (k, cell) in cells {
                if let Some(v) = cell
                    .try_load_latest_arc(cap)
                    .and_then(|(_, v)| (*v).clone())
                {
                    out.push((k, v));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// A range scan over the snapshot at `cap`: up to `limit` entries
    /// with key ≥ `from` — the operation Figure 8 measures.
    pub fn scan_arc(&self, from: K, limit: usize, cap: Version) -> Vec<(K, Arc<V>)> {
        let mut out = Vec::new();
        for shard in self.inner.shards.iter() {
            let cells: Vec<(K, OCell<Option<Arc<V>>>)> = shard
                .read()
                .range(from.clone()..)
                .map(|(k, c)| (k.clone(), c.clone()))
                .collect();
            for (k, cell) in cells {
                if let Some(v) = cell
                    .try_load_latest_arc(cap)
                    .and_then(|(_, v)| (*v).clone())
                {
                    out.push((k, v));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out.truncate(limit);
        out
    }

    /// Garbage collection: drops versions below the newest one ≤
    /// `boundary` in every cell, and drops cells that are absent in every
    /// surviving version. Safe once no reader's cap can go below
    /// `boundary`.
    pub fn prune_below(&self, boundary: Version) -> usize {
        Prune::prune_below(&*self.inner, boundary)
    }

    /// A type-erased weak handle for the background
    /// [`crate::vacuum::Vacuum`].
    pub fn prune_handle(&self) -> Weak<dyn Prune + Send + Sync>
    where
        K: Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        let arc: Arc<dyn Prune + Send + Sync> = Arc::clone(&self.inner) as _;
        Arc::downgrade(&arc)
    }

    /// Number of keys with any version history.
    pub fn tracked_keys(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().len()).sum()
    }
}

impl<K: Ord + Hash + Clone, V: Clone> OMap<K, V> {
    /// The value of `key` in the snapshot at `cap`, cloned out.
    pub fn get(&self, key: K, cap: Version) -> Option<V> {
        self.get_arc(&key, cap).map(|v| (*v).clone())
    }

    /// The full snapshot at `cap`, cloned, in key order.
    pub fn snapshot(&self, cap: Version) -> Vec<(K, V)> {
        self.snapshot_arc(cap)
            .into_iter()
            .map(|(k, v)| (k, (*v).clone()))
            .collect()
    }

    /// A cloned range scan; see [`OMap::scan_arc`].
    pub fn scan(&self, from: K, limit: usize, cap: Version) -> Vec<(K, V)> {
        self.scan_arc(from, limit, cap)
            .into_iter()
            .map(|(k, v)| (k, (*v).clone()))
            .collect()
    }
}

impl<K, V> crate::vacuum::Prunable for OMap<K, V>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn prune_weak(&self) -> Weak<dyn Prune + Send + Sync> {
        self.prune_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn insert_get_remove_snapshots() {
        let m: OMap<u32, &str> = OMap::new();
        m.insert(1, 1, "a").unwrap();
        m.insert(2, 2, "b").unwrap();
        m.remove(1, 3).unwrap();
        m.insert(1, 4, "a2").unwrap();
        assert_eq!(m.get(1, 1), Some("a"));
        assert_eq!(m.get(1, 3), None);
        assert_eq!(m.get(1, 4), Some("a2"));
        assert_eq!(m.get(2, 1), None, "not yet inserted at cap 1");
        assert_eq!(m.snapshot(2), vec![(1, "a"), (2, "b")]);
        assert_eq!(m.snapshot(3), vec![(2, "b")]);
        assert_eq!(m.snapshot(9), vec![(1, "a2"), (2, "b")]);
    }

    #[test]
    fn versions_are_write_once_per_key() {
        let m: OMap<u32, u32> = OMap::new();
        m.insert(1, 5, 50).unwrap();
        assert_eq!(m.insert(1, 5, 51), Err(OError::VersionExists(5)));
        // Different key, same version: fine (versions are per-cell).
        m.insert(2, 5, 52).unwrap();
    }

    #[test]
    fn scan_respects_range_limit_and_cap() {
        let m: OMap<u32, u32> = OMap::new();
        for k in 0..20u32 {
            m.insert(k, (k + 1) as u64, k * 10).unwrap();
        }
        let got = m.scan(5, 4, u64::MAX);
        assert_eq!(got, vec![(5, 50), (6, 60), (7, 70), (8, 80)]);
        // Cap 8 means only keys 0..=7 exist (version = key+1).
        let got = m.scan(5, 4, 8);
        assert_eq!(got, vec![(5, 50), (6, 60), (7, 70)]);
    }

    #[test]
    fn shard_counts_round_up_and_degenerate() {
        assert_eq!(OMap::<u32, u32>::with_shards(1).shard_count(), 1);
        assert_eq!(OMap::<u32, u32>::with_shards(3).shard_count(), 4);
        assert_eq!(OMap::<u32, u32>::with_shards(64).shard_count(), 64);
        // All operations still work on the degenerate single shard.
        let m: OMap<u32, u32> = OMap::with_shards(1);
        for k in 0..32 {
            m.insert(k, (k + 1) as u64, k).unwrap();
        }
        assert_eq!(m.snapshot(u64::MAX).len(), 32);
    }

    #[test]
    fn arc_reads_share_the_allocation() {
        let m: OMap<u32, String> = OMap::new();
        m.insert(1, 1, "shared".to_string()).unwrap();
        let a = m.get_arc(&1, 5).unwrap();
        let b = m.get_arc(&1, 5).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "reads share one allocation");
        let len = m.get_with(&1, 5, |s| s.len()).unwrap();
        assert_eq!(len, 6);
        assert_eq!(m.get_with(&2, 5, |s: &String| s.len()), None);
    }

    #[test]
    fn wait_version_blocks_until_publish() {
        let m: OMap<u32, u32> = OMap::new();
        let m2 = m.clone();
        let t = thread::spawn(move || m2.wait_version(7, 3).map(|v| *v));
        thread::sleep(std::time::Duration::from_millis(20));
        m.insert(7, 3, 30).unwrap();
        assert_eq!(t.join().unwrap(), Some(30));
    }

    #[test]
    fn concurrent_writers_and_snapshot_readers() {
        // Writers publish disjoint batches at increasing versions; every
        // reader snapshot must equal a prefix of the version order.
        let m: OMap<u32, u64> = OMap::new();
        let mut writers = Vec::new();
        for t in 1..=16u64 {
            let m = m.clone();
            writers.push(thread::spawn(move || {
                for k in 0..8u32 {
                    m.insert(t as u32 * 100 + k, t, t).unwrap();
                }
            }));
        }
        let readers: Vec<_> = (1..=16u64)
            .map(|cap| {
                let m = m.clone();
                thread::spawn(move || (cap, m.snapshot(cap)))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            let (cap, snap) = r.join().unwrap();
            for (k, v) in snap {
                assert!(v <= cap, "key {k}: version {v} leaked into snapshot {cap}");
                assert_eq!(k / 100, v as u32, "key batch matches its writer");
            }
        }
        // The final snapshot has every batch.
        assert_eq!(m.snapshot(u64::MAX).len(), 16 * 8);
    }

    #[test]
    fn prune_reclaims_history() {
        let m: OMap<u32, u32> = OMap::new();
        for ver in 1..=10u64 {
            m.insert(7, ver, ver as u32).unwrap();
        }
        let reclaimed = m.prune_below(8);
        assert_eq!(reclaimed, 7);
        assert_eq!(m.get(7, 8), Some(8));
        assert_eq!(m.get(7, u64::MAX), Some(10));
    }

    #[test]
    fn removed_keys_can_be_fully_dropped() {
        let m: OMap<u32, u32> = OMap::new();
        m.insert(1, 1, 10).unwrap();
        m.remove(1, 2).unwrap();
        m.insert(2, 3, 20).unwrap();
        assert_eq!(m.tracked_keys(), 2);
        m.prune_below(u64::MAX - 1);
        // Key 1's only surviving version is an absence: the cell may go.
        assert_eq!(m.get(1, u64::MAX), None);
        assert_eq!(m.get(2, u64::MAX), Some(20));
    }

    #[test]
    fn prune_keeps_cells_with_outstanding_handles() {
        // The vacuum-vs-writer race: a writer acquires the cell handle for
        // a fresh key (shard lock already released) but has not stored
        // yet; a vacuum pass in that window must not drop the cell from
        // the index, or the store lands in an orphan every later read
        // misses.
        let m: OMap<u32, u32> = OMap::new();
        let cell = m.cell_for(&1);
        m.prune_below(u64::MAX - 1);
        cell.store_version(1, Some(Arc::new(10))).unwrap();
        assert_eq!(m.get(1, u64::MAX), Some(10));
    }

    #[test]
    fn prune_does_not_strand_wait_version_waiters() {
        // Same race, waiter flavor: a wait_version parked on an unwritten
        // key materializes the cell; a vacuum pass must leave it indexed
        // so the eventual insert wakes the waiter instead of creating a
        // fresh cell (which would hang the waiter forever).
        let m: OMap<u32, u32> = OMap::new();
        let m2 = m.clone();
        let t = thread::spawn(move || m2.wait_version(5, 1).map(|v| *v));
        thread::sleep(std::time::Duration::from_millis(20));
        m.prune_below(u64::MAX - 1);
        m.insert(5, 1, 50).unwrap();
        assert_eq!(t.join().unwrap(), Some(50));
    }

    #[test]
    fn vacuum_tracks_whole_maps() {
        use crate::vacuum::{ReaderRegistry, Vacuum, VacuumCfg};
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(reg.clone(), VacuumCfg::default());
        let m: OMap<u32, u64> = OMap::new();
        vac.track(&m);
        for _ in 0..20 {
            let v = reg.next_version();
            m.insert(1, v, v).unwrap();
        }
        let reclaimed = vac.run_pass();
        assert_eq!(reclaimed, 19);
        assert_eq!(m.get(1, u64::MAX), Some(20));
    }
}
