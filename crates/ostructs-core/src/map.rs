//! A snapshot-isolated concurrent map (Table I, "Concurrent DS" row).
//!
//! [`OMap`] stores one [`OCell`] per key, each holding the full version
//! history of that key's value (`None` = absent at that version). Writers
//! publish at their task version; readers iterate a *consistent snapshot*
//! at any version cap without locks — "renaming to isolate readers from
//! writers", which the paper lists as the concurrent-data-structure use
//! case for O-structures.
//!
//! Consistency contract (the same one the paper's runtime rules give):
//! writers use monotonically increasing versions (e.g. task ids), and a
//! snapshot at cap `c` reflects exactly the writes with version ≤ `c`.
//! Writers to the *same* key must be externally ordered (distinct
//! versions); writers to different keys need no coordination at all.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::cell::OCell;
use crate::error::OError;
use crate::Version;

/// A concurrent map with versioned values and snapshot reads.
///
/// ```
/// use ostructs_core::map::OMap;
///
/// let m: OMap<&str, u32> = OMap::new();
/// m.insert("x", 1, 10).unwrap();          // version 1
/// m.insert("y", 2, 20).unwrap();          // version 2
/// m.remove("x", 3).unwrap();              // version 3
///
/// assert_eq!(m.get("x", 2), Some(10));    // snapshot before the remove
/// assert_eq!(m.get("x", 3), None);
/// assert_eq!(m.snapshot(2), vec![("x", 10), ("y", 20)]);
/// assert_eq!(m.snapshot(9), vec![("y", 20)]);
/// ```
pub struct OMap<K, V> {
    cells: Arc<RwLock<BTreeMap<K, OCell<Option<V>>>>>,
}

impl<K, V> Clone for OMap<K, V> {
    fn clone(&self) -> Self {
        OMap {
            cells: Arc::clone(&self.cells),
        }
    }
}

impl<K: Ord + Clone, V: Clone> Default for OMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> OMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        OMap {
            cells: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    fn cell_for(&self, key: &K) -> OCell<Option<V>> {
        if let Some(cell) = self.cells.read().get(key) {
            return cell.clone();
        }
        let mut w = self.cells.write();
        w.entry(key.clone()).or_default().clone()
    }

    /// Publishes `key -> value` at `version`.
    pub fn insert(&self, key: K, version: Version, value: V) -> Result<(), OError> {
        self.cell_for(&key).store_version(version, Some(value))
    }

    /// Publishes the removal of `key` at `version` (an absence version —
    /// older snapshots still see the previous value).
    pub fn remove(&self, key: K, version: Version) -> Result<(), OError> {
        self.cell_for(&key).store_version(version, None)
    }

    /// The value of `key` in the snapshot at `cap` (non-blocking: a key
    /// with no version ≤ `cap` is simply absent from that snapshot).
    pub fn get(&self, key: K, cap: Version) -> Option<V> {
        let cell = self.cells.read().get(&key)?.clone();
        cell.try_load_latest(cap).and_then(|(_, v)| v)
    }

    /// The full snapshot at `cap`, in key order.
    pub fn snapshot(&self, cap: Version) -> Vec<(K, V)> {
        let cells: Vec<(K, OCell<Option<V>>)> = self
            .cells
            .read()
            .iter()
            .map(|(k, c)| (k.clone(), c.clone()))
            .collect();
        cells
            .into_iter()
            .filter_map(|(k, cell)| {
                cell.try_load_latest(cap)
                    .and_then(|(_, v)| v)
                    .map(|v| (k, v))
            })
            .collect()
    }

    /// A range scan over the snapshot at `cap`: up to `limit` entries with
    /// key ≥ `from` — the operation Figure 8 measures.
    pub fn scan(&self, from: K, limit: usize, cap: Version) -> Vec<(K, V)> {
        let cells: Vec<(K, OCell<Option<V>>)> = self
            .cells
            .read()
            .range(from..)
            .map(|(k, c)| (k.clone(), c.clone()))
            .collect();
        cells
            .into_iter()
            .filter_map(|(k, cell)| {
                cell.try_load_latest(cap)
                    .and_then(|(_, v)| v)
                    .map(|v| (k, v))
            })
            .take(limit)
            .collect()
    }

    /// Garbage collection: drops versions below the newest one ≤ `boundary`
    /// in every cell, and drops cells that are absent in every surviving
    /// version. Safe once no reader's cap can go below `boundary`.
    pub fn prune_below(&self, boundary: Version) -> usize {
        let mut reclaimed = 0;
        let mut w = self.cells.write();
        w.retain(|_, cell| {
            reclaimed += cell.prune_below(boundary);
            // Keep the cell if any snapshot at or after the boundary can
            // still observe a value in it.
            cell.versions()
                .iter()
                .any(|&v| cell.try_load_version(v).flatten().is_some() || v > boundary)
                || cell.try_load_latest(Version::MAX).map(|(_, v)| v.is_some()) == Some(true)
        });
        reclaimed
    }

    /// Number of keys with any version history.
    pub fn tracked_keys(&self) -> usize {
        self.cells.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn insert_get_remove_snapshots() {
        let m: OMap<u32, &str> = OMap::new();
        m.insert(1, 1, "a").unwrap();
        m.insert(2, 2, "b").unwrap();
        m.remove(1, 3).unwrap();
        m.insert(1, 4, "a2").unwrap();
        assert_eq!(m.get(1, 1), Some("a"));
        assert_eq!(m.get(1, 3), None);
        assert_eq!(m.get(1, 4), Some("a2"));
        assert_eq!(m.get(2, 1), None, "not yet inserted at cap 1");
        assert_eq!(m.snapshot(2), vec![(1, "a"), (2, "b")]);
        assert_eq!(m.snapshot(3), vec![(2, "b")]);
        assert_eq!(m.snapshot(9), vec![(1, "a2"), (2, "b")]);
    }

    #[test]
    fn versions_are_write_once_per_key() {
        let m: OMap<u32, u32> = OMap::new();
        m.insert(1, 5, 50).unwrap();
        assert_eq!(m.insert(1, 5, 51), Err(OError::VersionExists(5)));
        // Different key, same version: fine (versions are per-cell).
        m.insert(2, 5, 52).unwrap();
    }

    #[test]
    fn scan_respects_range_limit_and_cap() {
        let m: OMap<u32, u32> = OMap::new();
        for k in 0..20u32 {
            m.insert(k, (k + 1) as u64, k * 10).unwrap();
        }
        let got = m.scan(5, 4, u64::MAX);
        assert_eq!(got, vec![(5, 50), (6, 60), (7, 70), (8, 80)]);
        // Cap 8 means only keys 0..=7 exist (version = key+1).
        let got = m.scan(5, 4, 8);
        assert_eq!(got, vec![(5, 50), (6, 60), (7, 70)]);
    }

    #[test]
    fn concurrent_writers_and_snapshot_readers() {
        // Writers publish disjoint batches at increasing versions; every
        // reader snapshot must equal a prefix of the version order.
        let m: OMap<u32, u64> = OMap::new();
        let mut writers = Vec::new();
        for t in 1..=16u64 {
            let m = m.clone();
            writers.push(thread::spawn(move || {
                for k in 0..8u32 {
                    m.insert(t as u32 * 100 + k, t, t).unwrap();
                }
            }));
        }
        let readers: Vec<_> = (1..=16u64)
            .map(|cap| {
                let m = m.clone();
                thread::spawn(move || (cap, m.snapshot(cap)))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            let (cap, snap) = r.join().unwrap();
            for (k, v) in snap {
                assert!(v <= cap, "key {k}: version {v} leaked into snapshot {cap}");
                assert_eq!(k / 100, v as u32, "key batch matches its writer");
            }
        }
        // The final snapshot has every batch.
        assert_eq!(m.snapshot(u64::MAX).len(), 16 * 8);
    }

    #[test]
    fn prune_reclaims_history() {
        let m: OMap<u32, u32> = OMap::new();
        for ver in 1..=10u64 {
            m.insert(7, ver, ver as u32).unwrap();
        }
        let reclaimed = m.prune_below(8);
        assert_eq!(reclaimed, 7);
        assert_eq!(m.get(7, 8), Some(8));
        assert_eq!(m.get(7, u64::MAX), Some(10));
    }

    #[test]
    fn removed_keys_can_be_fully_dropped() {
        let m: OMap<u32, u32> = OMap::new();
        m.insert(1, 1, 10).unwrap();
        m.remove(1, 2).unwrap();
        m.insert(2, 3, 20).unwrap();
        assert_eq!(m.tracked_keys(), 2);
        m.prune_below(u64::MAX - 1);
        // Key 1's only surviving version is an absence: the cell may go.
        assert_eq!(m.get(1, u64::MAX), None);
        assert_eq!(m.get(2, u64::MAX), Some(20));
    }
}
