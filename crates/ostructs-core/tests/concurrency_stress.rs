//! Proptest-driven multi-thread stress: real threads execute generated
//! programs against the sharded store while oracle predicates — snapshot
//! consistency, per-version lock exclusion, version monotonicity,
//! vacuum-never-frees-live — and `OCell::check_invariants` run against
//! every outcome.
//!
//! Case counts are deliberately small: each case spins up real threads,
//! and the value of the suite is the generated *shapes* (key/version
//! programs, shard counts, pin timings), not raw iteration volume.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use ostructs_core::map::OMap;
use ostructs_core::vacuum::{ReaderRegistry, Vacuum, VacuumCfg};
use ostructs_core::OCell;

/// A generated write program: `(key, version)` pairs with globally unique
/// versions (version = 1 + index into the program), value = version so
/// every read can verify which write it observed.
fn write_program() -> impl Strategy<Value = Vec<(u32, u64)>> {
    proptest::collection::vec(0u32..12, 1..60).prop_map(|keys| {
        keys.into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64 + 1))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot consistency: writers race across threads, yet a snapshot
    /// at cap `c` contains exactly the writes with version ≤ `c` — per
    /// key, the one with the highest version.
    #[test]
    fn snapshot_at_cap_is_exactly_writes_below_cap(
        program in write_program(),
        threads in 1usize..5,
        shards in 0u32..7,
        caps in proptest::collection::vec(0u64..70, 1..6),
    ) {
        let m: OMap<u32, u64> = OMap::with_shards(1 << shards);
        // Reference: per key, version -> value (value = version).
        let mut model: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for &(k, v) in &program {
            model.entry(k).or_default().push(v);
        }
        // Writes to the same key must be externally ordered (the map's
        // documented contract), so partition the program *by key* across
        // threads: all writes to one key stay on one thread, in order.
        thread::scope(|scope| {
            for t in 0..threads {
                let m = m.clone();
                let batch: Vec<(u32, u64)> = program
                    .iter()
                    .filter(|(k, _)| (*k as usize) % threads == t)
                    .copied()
                    .collect();
                scope.spawn(move || {
                    for (k, v) in batch {
                        m.insert(k, v, v).unwrap();
                    }
                });
            }
        });
        for &cap in &caps {
            let snap = m.snapshot(cap);
            let want: Vec<(u32, u64)> = model
                .iter()
                .filter_map(|(&k, versions)| {
                    versions
                        .iter()
                        .filter(|&&v| v <= cap)
                        .max()
                        .map(|&v| (k, v))
                })
                .collect();
            prop_assert_eq!(snap, want, "cap {}", cap);
        }
    }

    /// Per-version lock exclusion: N threads contend for the same
    /// version's lock; at most one may ever be inside the critical
    /// section, and every thread eventually gets a turn.
    #[test]
    fn lock_load_version_is_mutually_exclusive(
        contenders in 2u64..7,
        rounds in 1u32..4,
    ) {
        let cell = OCell::with_initial(1, 0u32);
        let inside = Arc::new(AtomicBool::new(false));
        let entries = Arc::new(AtomicU64::new(0));
        thread::scope(|scope| {
            for tid in 1..=contenders {
                let cell = cell.clone();
                let inside = Arc::clone(&inside);
                let entries = Arc::clone(&entries);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        cell.lock_load_version(1, tid).unwrap();
                        assert!(
                            !inside.swap(true, Ordering::SeqCst),
                            "two tasks inside the version-1 critical section"
                        );
                        entries.fetch_add(1, Ordering::SeqCst);
                        inside.store(false, Ordering::SeqCst);
                        cell.unlock_version(tid, None).unwrap();
                    }
                });
            }
        });
        prop_assert_eq!(
            entries.load(Ordering::SeqCst),
            contenders * rounds as u64
        );
        cell.check_invariants().unwrap();
    }

    /// Version monotonicity: while a writer publishes versions in order,
    /// a reader polling `try_load_latest` at a growing cap must observe a
    /// non-decreasing version sequence, never above its cap.
    #[test]
    fn observed_latest_versions_are_monotone(
        writes in 2u64..40,
    ) {
        let cell: OCell<u64> = OCell::with_initial(0, 0);
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let cell = cell.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let cap = last + 4;
                    if let Some((v, val)) = cell.try_load_latest(cap) {
                        assert!(v >= last, "latest went backwards: {v} < {last}");
                        assert!(v <= cap, "version {v} above cap {cap}");
                        assert_eq!(val, v, "value must match its version");
                        last = v;
                    }
                }
                last
            })
        };
        for v in 1..=writes {
            cell.store_version(v, v).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        cell.check_invariants().unwrap();
        prop_assert_eq!(cell.try_load_latest(u64::MAX), Some((writes, writes)));
    }

    /// Vacuum-never-frees-live: under concurrent churn + a concurrently
    /// running vacuum, a pinned reader's snapshot stays fully resolvable
    /// for the guard's entire lifetime.
    #[test]
    fn vacuum_never_frees_pinned_snapshots(
        churn in 10u64..120,
        pin_after in 0u64..10,
    ) {
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(
            reg.clone(),
            VacuumCfg { interval: std::time::Duration::from_millis(1) },
        );
        let cell = OCell::with_initial(0, 0u64);
        vac.track(&cell);
        for _ in 0..pin_after {
            let v = reg.next_version();
            cell.store_version(v, v).unwrap();
        }
        let pin = reg.pin();
        let expect = cell.try_load_latest(pin.cap());
        let writer = {
            let reg = reg.clone();
            let cell = cell.clone();
            thread::spawn(move || {
                for _ in 0..churn {
                    let v = reg.next_version();
                    cell.store_version(v, v).unwrap();
                }
            })
        };
        // The pinned snapshot answers identically throughout the churn.
        for _ in 0..8 {
            vac.run_pass();
            prop_assert_eq!(cell.try_load_latest(pin.cap()), expect);
        }
        writer.join().unwrap();
        vac.run_pass();
        prop_assert_eq!(cell.try_load_latest(pin.cap()), expect);
        cell.check_invariants().unwrap();
        drop(pin);
        vac.run_pass();
        prop_assert_eq!(cell.version_count(), 1, "history drains after unpin");
    }
}

/// Deterministic (non-proptest) cross-check: a hot rename pipeline under
/// a live vacuum keeps the full invariant oracle green at every step.
#[test]
fn rename_pipeline_under_vacuum_keeps_invariants() {
    let reg = ReaderRegistry::new();
    let vac = Vacuum::start(
        reg.clone(),
        VacuumCfg {
            interval: std::time::Duration::from_millis(1),
        },
    );
    let cell = OCell::with_initial(1, 7u32);
    vac.track(&cell);
    reg.advance_to(1);
    for tid in 1..=64u64 {
        cell.lock_load_version(tid, tid).unwrap();
        cell.unlock_version(tid, Some(tid + 1)).unwrap();
        reg.advance_to(tid + 1);
        cell.check_invariants().unwrap();
    }
    vac.run_pass();
    cell.check_invariants().unwrap();
    assert_eq!(cell.try_load_latest(u64::MAX), Some((65, 7)));
}
