//! Property-based tests: the software O-structure cell against a
//! reference model of the §II-A semantics.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ostructs_core::{OCell, OError};

/// Reference model: an ordered map of versions plus lock state.
#[derive(Default, Debug)]
struct Model {
    versions: BTreeMap<u64, (u32, Option<u64>)>, // version -> (value, locked_by)
    held: BTreeMap<u64, u64>,                    // tid -> version
}

impl Model {
    fn store(&mut self, v: u64, val: u32) -> Result<(), OError> {
        if self.versions.contains_key(&v) {
            return Err(OError::VersionExists(v));
        }
        self.versions.insert(v, (val, None));
        Ok(())
    }

    fn try_load(&self, v: u64) -> Option<u32> {
        self.versions
            .get(&v)
            .filter(|(_, l)| l.is_none())
            .map(|&(val, _)| val)
    }

    fn try_latest(&self, cap: u64) -> Option<(u64, u32)> {
        self.versions
            .range(..=cap)
            .next_back()
            .filter(|(_, (_, l))| l.is_none())
            .map(|(&v, &(val, _))| (v, val))
    }

    fn try_lock_latest(&mut self, cap: u64, tid: u64) -> Option<(u64, u32)> {
        if self.held.contains_key(&tid) {
            return None; // one lock per task per cell in this test
        }
        let (v, val) = self.try_latest(cap)?;
        self.versions.get_mut(&v).expect("exists").1 = Some(tid);
        self.held.insert(tid, v);
        Some((v, val))
    }

    fn unlock(&mut self, tid: u64, create: Option<u64>) -> Result<(), OError> {
        let Some(v) = self.held.remove(&tid) else {
            return Err(OError::NotLockOwner(tid));
        };
        let val = {
            let slot = self.versions.get_mut(&v).expect("held");
            slot.1 = None;
            slot.0
        };
        if let Some(vn) = create {
            if self.versions.contains_key(&vn) {
                return Err(OError::VersionExists(vn));
            }
            self.versions.insert(vn, (val, None));
        }
        Ok(())
    }

    fn prune_below(&mut self, boundary: u64) {
        let Some((&keep, _)) = self.versions.range(..=boundary).next_back() else {
            return;
        };
        self.versions.retain(|&v, (_, l)| v >= keep || l.is_some());
    }
}

#[derive(Debug, Clone)]
enum Step {
    Store { v: u64, val: u32 },
    TryLoad { v: u64 },
    TryLatest { cap: u64 },
    LockLatest { cap: u64, tid: u64 },
    Unlock { tid: u64, create: Option<u64> },
    Prune { boundary: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..40, any::<u32>()).prop_map(|(v, val)| Step::Store { v, val }),
        (1u64..40).prop_map(|v| Step::TryLoad { v }),
        (1u64..40).prop_map(|cap| Step::TryLatest { cap }),
        (1u64..40, 1u64..8).prop_map(|(cap, tid)| Step::LockLatest { cap, tid }),
        (1u64..8, proptest::option::of(1u64..40))
            .prop_map(|(tid, create)| Step::Unlock { tid, create }),
        (1u64..40).prop_map(|boundary| Step::Prune { boundary }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every non-blocking observation of the cell matches the model, for
    /// arbitrary interleavings of the six operations.
    #[test]
    fn cell_matches_model(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let cell: OCell<u32> = OCell::new();
        let mut model = Model::default();
        for step in steps {
            match step {
                Step::Store { v, val } => {
                    prop_assert_eq!(cell.store_version(v, val), model.store(v, val));
                }
                Step::TryLoad { v } => {
                    prop_assert_eq!(cell.try_load_version(v), model.try_load(v));
                }
                Step::TryLatest { cap } => {
                    prop_assert_eq!(cell.try_load_latest(cap), model.try_latest(cap));
                }
                Step::LockLatest { cap, tid } => {
                    // Skip when it would block (absent/locked) or the task
                    // already holds a lock; the model mirrors the decision.
                    let would = model.try_latest(cap).is_some()
                        && !model.held.contains_key(&tid);
                    let got = if would {
                        Some(cell.lock_load_latest(cap, tid).unwrap())
                    } else {
                        None
                    };
                    prop_assert_eq!(got, model.try_lock_latest(cap, tid));
                }
                Step::Unlock { tid, create } => {
                    prop_assert_eq!(
                        cell.unlock_version(tid, create),
                        model.unlock(tid, create)
                    );
                }
                Step::Prune { boundary } => {
                    cell.prune_below(boundary);
                    model.prune_below(boundary);
                    let want: Vec<u64> = model.versions.keys().copied().collect();
                    prop_assert_eq!(cell.versions(), want);
                }
            }
        }
    }

    /// GC transparency: pruning below any boundary never changes what a
    /// task with cap ≥ boundary observes.
    #[test]
    fn prune_is_invisible_above_the_boundary(
        versions in proptest::collection::btree_set(1u64..60, 1..25),
        boundary in 1u64..60,
        caps in proptest::collection::vec(1u64..60, 1..10),
    ) {
        let cell: OCell<u32> = OCell::new();
        for &v in &versions {
            cell.store_version(v, v as u32 * 3).unwrap();
        }
        let before: Vec<Option<(u64, u32)>> =
            caps.iter().map(|&c| cell.try_load_latest(c)).collect();
        cell.prune_below(boundary);
        for (i, &cap) in caps.iter().enumerate() {
            if cap >= boundary {
                prop_assert_eq!(cell.try_load_latest(cap), before[i],
                    "cap {} >= boundary {}", cap, boundary);
            }
        }
    }

    /// Renaming (unlock-with-create) always preserves the locked value and
    /// leaves both versions unlocked.
    #[test]
    fn rename_preserves_value(
        base in 1u64..20,
        offset in 1u64..20,
        val in any::<u32>(),
    ) {
        let cell = OCell::with_initial(base, val);
        cell.lock_load_version(base, 1).unwrap();
        let vn = base + offset;
        cell.unlock_version(1, Some(vn)).unwrap();
        prop_assert_eq!(cell.try_load_version(base), Some(val));
        prop_assert_eq!(cell.try_load_version(vn), Some(val));
    }
}
