//! Lock-discipline regression tests for the sharded map (ISSUE 8
//! satellite): no shard lock may be held across a blocking `OCell`
//! operation. The old single-`RwLock` map had no blocking entry point,
//! but any naive implementation of `wait_version` that resolved the cell
//! *and* blocked under one lock would wedge every other key in the
//! shard. These tests pin the required behaviour with real threads and a
//! watchdog, so the discipline can never silently regress.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use ostructs_core::map::OMap;

const WATCHDOG: Duration = Duration::from_secs(10);

/// Thread A blocks in `wait_version` on a missing version; thread B must
/// still be able to insert *other keys into the same shard* (and then
/// publish the version A waits for). With a shard lock held across the
/// blocking wait, B's insert would deadlock and the watchdog fires.
#[test]
fn blocked_wait_does_not_hold_the_shard_lock() {
    // One shard = every key collides = maximal exposure.
    let m: OMap<u32, u64> = OMap::with_shards(1);
    let (done_tx, done_rx) = mpsc::channel();

    let waiter = {
        let m = m.clone();
        let done_tx = done_tx.clone();
        thread::spawn(move || {
            let got = m.wait_version(1, 5).map(|v| *v);
            done_tx.send(("waiter", got)).unwrap();
        })
    };
    // Give the waiter time to park inside the cell.
    thread::sleep(Duration::from_millis(30));

    let writer = {
        let m = m.clone();
        thread::spawn(move || {
            // Same shard, different key: must not block behind the waiter.
            m.insert(2, 1, 100).unwrap();
            m.remove(3, 2).unwrap();
            assert_eq!(m.get(2, 5), Some(100));
            // Now release the waiter.
            m.insert(1, 5, 500).unwrap();
            done_tx.send(("writer", Some(0))).unwrap();
        })
    };

    let mut seen = Vec::new();
    for _ in 0..2 {
        let (who, _) = done_rx
            .recv_timeout(WATCHDOG)
            .expect("deadlock: a shard lock is being held across a blocking cell wait");
        seen.push(who);
    }
    waiter.join().unwrap();
    writer.join().unwrap();
    assert!(seen.contains(&"waiter") && seen.contains(&"writer"));
    assert_eq!(m.get(1, 5), Some(500));
}

/// Same exposure through the `OCell` handle directly: `cell_for`-style
/// lookup must hand out a clone and release the shard before any
/// blocking load. Two threads wait on two different missing keys of the
/// same shard; a third publishes both. All must finish.
#[test]
fn two_blocked_waiters_on_one_shard_make_progress() {
    let m: OMap<u32, u64> = OMap::with_shards(1);
    let (done_tx, done_rx) = mpsc::channel();

    for key in [10u32, 11] {
        let m = m.clone();
        let done_tx = done_tx.clone();
        thread::spawn(move || {
            let got = m.wait_version(key, 1).map(|v| *v);
            done_tx.send((key, got)).unwrap();
        });
    }
    thread::sleep(Duration::from_millis(30));
    m.insert(10, 1, 1000).unwrap();
    m.insert(11, 1, 1100).unwrap();

    let mut got = Vec::new();
    for _ in 0..2 {
        got.push(
            done_rx
                .recv_timeout(WATCHDOG)
                .expect("deadlock among blocked same-shard waiters"),
        );
    }
    got.sort_unstable();
    assert_eq!(got, vec![(10, Some(1000)), (11, Some(1100))]);
}

/// Snapshot/scan while a waiter is parked: read paths must not require
/// the blocked cell's shard either.
#[test]
fn snapshot_and_scan_proceed_past_blocked_waiters() {
    let m: OMap<u32, u64> = OMap::with_shards(1);
    m.insert(5, 1, 50).unwrap();
    let waiter = {
        let m = m.clone();
        thread::spawn(move || m.wait_version(9, 3).map(|v| *v))
    };
    thread::sleep(Duration::from_millis(30));
    // Both read paths complete while key 9's waiter is parked.
    assert_eq!(m.snapshot(u64::MAX), vec![(5, 50)]);
    assert_eq!(m.scan(0, 10, u64::MAX), vec![(5, 50)]);
    m.insert(9, 3, 90).unwrap();
    assert_eq!(waiter.join().unwrap(), Some(90));
}
