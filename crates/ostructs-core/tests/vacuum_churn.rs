//! Sustained-churn acceptance test (ISSUE 8): writers churn versions
//! while lagging readers pin and release snapshots. With the vacuum ON
//! the live-version count stays bounded; with it OFF the history grows
//! without bound. This is the memory-boundedness claim of the
//! epoch-watermark design, demonstrated rather than asserted.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ostructs_core::map::OMap;
use ostructs_core::vacuum::{ReaderRegistry, Vacuum, VacuumCfg};
use ostructs_core::OCell;

const CHURN_VERSIONS: u64 = 4_000;
/// Writer backpressure threshold: with the vacuum on, the writer stalls
/// whenever live history exceeds this, the way a real store bounds its
/// memory. The vacuum must always drain below it again (asserted with a
/// deadline), so the peak stays O(threshold) — not O(total churn).
const BACKPRESSURE_AT: usize = 768;
/// Peak bound: threshold + the stores between two backpressure checks +
/// slack for one vacuum interval of lag (generous for 1-CPU hosts where
/// the vacuum thread competes with the writer for the core).
const BOUNDED_LIMIT: usize = 1_200;

/// Runs `CHURN_VERSIONS` of writer churn against one hot cell with
/// lagging readers pinning/unpinning throughout, sampling the live
/// version count. Returns the maximum observed count.
fn churn(vacuum_on: bool) -> usize {
    let reg = ReaderRegistry::new();
    let vac = vacuum_on.then(|| {
        Vacuum::start(
            reg.clone(),
            VacuumCfg {
                interval: Duration::from_micros(200),
            },
        )
    });
    let cell = OCell::with_initial(0, 0u64);
    if let Some(vac) = &vac {
        vac.track(&cell);
    }
    let stop = Arc::new(AtomicBool::new(false));
    // Lagging readers: pin a snapshot, hold it briefly, verify it stays
    // resolvable, release, repeat.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let reg = reg.clone();
            let cell = cell.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let pin = reg.pin();
                    let first = cell.try_load_latest(pin.cap());
                    thread::yield_now();
                    let second = cell.try_load_latest(pin.cap());
                    assert_eq!(first, second, "pinned snapshot changed underfoot");
                    drop(pin);
                }
            })
        })
        .collect();
    let mut max_live = 0;
    for i in 0..CHURN_VERSIONS {
        // Single writer: publish-then-advance, so a pinned cap only ever
        // covers already-published versions and snapshots are stable.
        let v = reg.current();
        cell.store_version(v, v).unwrap();
        reg.advance_to(v);
        if i % 64 == 0 {
            max_live = max_live.max(cell.version_count());
            if vacuum_on {
                // Backpressure: stall until the vacuum drains the
                // backlog. Without a vacuum this would never clear —
                // that's the unboundedness the OFF variant demonstrates.
                let deadline = std::time::Instant::now() + Duration::from_secs(10);
                while cell.version_count() > BACKPRESSURE_AT {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "vacuum failed to drain below the backpressure threshold"
                    );
                    thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }
    max_live = max_live.max(cell.version_count());
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    if let Some(vac) = &vac {
        // Quiesced: one final pass must drain everything but the newest.
        vac.run_pass();
        assert_eq!(cell.version_count(), 1, "quiesced history fully drains");
        let stats = vac.stats();
        assert!(stats.passes >= 1);
        assert!(
            stats.reclaimed >= CHURN_VERSIONS - BOUNDED_LIMIT as u64,
            "vacuum reclaimed only {} of {CHURN_VERSIONS}",
            stats.reclaimed
        );
    }
    cell.check_invariants().unwrap();
    max_live
}

#[test]
fn vacuum_bounds_live_versions_under_churn() {
    let with_vacuum = churn(true);
    assert!(
        with_vacuum <= BOUNDED_LIMIT,
        "vacuum on: live versions peaked at {with_vacuum}, expected ≤ {BOUNDED_LIMIT}"
    );
}

#[test]
fn without_vacuum_history_grows_unboundedly() {
    let without = churn(false);
    assert_eq!(
        without,
        CHURN_VERSIONS as usize + 1,
        "vacuum off: every version (plus the initial one) must still be live"
    );
}

/// Same boundedness property at the map level: churn one hot key plus a
/// rotating cold key-set in a tracked `OMap`, vacuum on.
#[test]
fn vacuum_bounds_map_history_under_churn() {
    let reg = ReaderRegistry::new();
    let vac = Vacuum::start(
        reg.clone(),
        VacuumCfg {
            interval: Duration::from_micros(200),
        },
    );
    let m: OMap<u32, u64> = OMap::new();
    vac.track(&m);
    for i in 0..2_000u64 {
        let v = reg.next_version();
        m.insert(0, v, v).unwrap(); // hot key
        let v = reg.next_version();
        m.insert(1 + (i % 16) as u32, v, v).unwrap(); // cold rotation
    }
    vac.run_pass();
    // Hot-key history is drained to the newest version; the map answers
    // current reads exactly.
    let latest = m.get(0, u64::MAX).unwrap();
    let pin = reg.pin();
    assert_eq!(m.get(0, pin.cap()), Some(latest));
    assert_eq!(m.tracked_keys(), 17);
}
