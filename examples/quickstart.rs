//! Quickstart: the O-structure memory interface in five minutes.
//!
//! Run with `cargo run --example quickstart`.

use ostructs::core::{OCell, OError, ORuntime};

fn main() {
    // --- 1. A multi-version memory cell --------------------------------
    // An O-structure holds *every* version of a value, ordered by version
    // id. Loads name the version they need; stores create versions.
    let cell: OCell<&str> = OCell::new();
    cell.store_version(1, "v1").unwrap();
    cell.store_version(3, "v3").unwrap();

    // Exact loads get exactly what they ask for; capped loads get the
    // newest version not exceeding their cap — a consistent snapshot.
    assert_eq!(cell.load_version(1), "v1");
    assert_eq!(cell.load_latest(2), (1, "v1")); // version 3 is the future
    assert_eq!(cell.load_latest(9), (3, "v3"));
    println!("snapshot reads: cap 2 -> v1, cap 9 -> v3");

    // Versions are write-once: renaming (creating a new version) replaces
    // mutation, which is what eliminates write-after-read and
    // write-after-write hazards.
    assert_eq!(cell.store_version(3, "nope"), Err(OError::VersionExists(3)));

    // --- 2. Fine-grained locking ----------------------------------------
    // A version can be locked; exact loads of *that* version stall while
    // loads of other versions are unaffected.
    let shared: OCell<u32> = OCell::with_initial(1, 10);
    let got = shared.lock_load_version(1, /* task */ 7).unwrap();
    assert_eq!(got, 10);
    assert_eq!(shared.try_load_version(1), None, "locked");
    // Unlock and rename in one step: version 2 carries the same value.
    shared.unlock_version(7, Some(2)).unwrap();
    assert_eq!(shared.load_version(2), 10);
    println!("lock/unlock-rename: version 2 created from locked version 1");

    // --- 3. Task-parallel execution --------------------------------------
    // The runtime executes a sequential task list across threads; task ids
    // double as versions, so the parallel run has sequential semantics.
    let rt = ORuntime::new(4);
    let chain = OCell::with_initial(0, 0u64);
    rt.track(&chain); // garbage-collect superseded versions
    let tasks: Vec<Box<dyn FnOnce(u64) + Send>> = (0..100)
        .map(|_| {
            let chain = chain.clone();
            Box::new(move |tid: u64| {
                // True dependency on the predecessor task, expressed as a
                // versioned load — no locks, no races.
                let prev = chain.load_version(tid - 1);
                chain.store_version(tid, prev + 1).unwrap();
            }) as Box<dyn FnOnce(u64) + Send>
        })
        .collect();
    rt.run(tasks);
    assert_eq!(chain.load_latest(u64::MAX), (100, 100));
    println!(
        "100 chained tasks on 4 threads -> value 100; GC reclaimed {} versions in {} passes",
        rt.gc_stats().reclaimed,
        rt.gc_stats().collections
    );
}
