//! Snapshot isolation by renaming (§IV-C of the paper).
//!
//! Readers capped at their task id see a consistent snapshot of multiple
//! locations, no matter how writers mutate them concurrently — renaming
//! eliminates write-after-read dependencies without any reader-side locks.
//! The second half runs the paper's Figure 8 comparison in the simulator:
//! a versioned binary tree against one protected by a read-write lock.
//!
//! Run with `cargo run --release --example snapshot_isolation`.

use std::sync::Arc;
use std::thread;

use ostructs::core::OCell;
use ostructs::cpu::MachineCfg;
use ostructs::workloads::btree;
use ostructs::workloads::harness::DsCfg;

fn main() {
    // --- Software layer: a two-location invariant ------------------------
    // Two cells always sum to 100 at every version boundary. Writers move
    // amounts between them (new versions); readers at any cap must see the
    // invariant hold — a torn read would break it.
    let a = OCell::with_initial(0, 60i64);
    let b = OCell::with_initial(0, 40i64);
    let mut writers = Vec::new();
    for t in 1..=50u64 {
        let a = a.clone();
        let b = b.clone();
        writers.push(thread::spawn(move || {
            // Exact loads pin the true dependency on the predecessor's
            // fully committed snapshot.
            let av = a.load_version(t - 1);
            let bv = b.load_version(t - 1);
            let moved = (t as i64 * 7) % 23 - 11;
            a.store_version(t, av - moved).unwrap();
            b.store_version(t, bv + moved).unwrap();
        }));
    }
    let readers: Vec<_> = (1..=50u64)
        .map(|cap| {
            let a = a.clone();
            let b = b.clone();
            thread::spawn(move || {
                // Readers name the snapshot they want; renaming guarantees
                // it is immutable once both stores landed.
                let av = a.load_version(cap);
                let bv = b.load_version(cap);
                (cap, av + bv)
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let mut checked = 0;
    for r in readers {
        let (cap, sum) = r.join().unwrap();
        assert_eq!(sum, 100, "snapshot at cap {cap} was torn");
        checked += 1;
    }
    println!("software layer: {checked} concurrent snapshot reads, invariant a+b=100 held in all");
    let _ = Arc::new(()); // (keep the import earnest)

    // --- Simulated hardware: Figure 8 in miniature -----------------------
    let cfg = DsCfg {
        initial: 400,
        ops: 128,
        reads_per_write: 3,
        scan_range: 8,
        key_space: 1600,
        seed: 0xf8,
        insert_only: true,
    };
    println!("\nsimulated 8-core machine, binary tree, 3 scans : 1 insert, scan range 8:");
    let v = btree::run_versioned(MachineCfg::paper(8), &cfg);
    v.assert_ok();
    let r = btree::run_rwlock(MachineCfg::paper(8), &cfg);
    r.assert_ok();
    println!("  versioned (snapshot isolation): {:>9} cycles", v.cycles);
    println!("  read-write lock baseline:       {:>9} cycles", r.cycles);
    println!(
        "  versioned/rwlock ratio: {:.2} (scans overlap inserts instead of excluding them)",
        r.cycles as f64 / v.cycles as f64
    );
}
