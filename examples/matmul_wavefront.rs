//! Regular parallelism with I-structure-style versioning (§IV-B):
//! the chained matrix multiply and the Levenshtein wavefront, run on the
//! simulated multicore at several core counts.
//!
//! Producers `STORE-VERSION` each element once; consumers `LOAD-VERSION`
//! and stall element-wise until the producer catches up — fine-grained RAW
//! synchronization with no locks and no barriers.
//!
//! Run with `cargo run --release --example matmul_wavefront`.

use ostructs::cpu::MachineCfg;
use ostructs::workloads::levenshtein::{self, LevCfg};
use ostructs::workloads::matmul::{self, MatmulCfg};

fn main() {
    let mat = MatmulCfg { n: 24, seed: 1 };
    let lev = LevCfg { len: 80, seed: 2 };

    println!("matrix multiply R = (A x B) x C, n = {}:", mat.n);
    let seq = matmul::run_unversioned(MachineCfg::paper(1), &mat);
    seq.assert_ok();
    println!("  unversioned sequential: {:>9} cycles", seq.cycles);
    for cores in [1usize, 2, 4, 8, 16] {
        let r = matmul::run_versioned(MachineCfg::paper(cores), &mat);
        r.assert_ok();
        println!(
            "  versioned {cores:>2} cores:     {:>9} cycles  (speedup {:.2}x)",
            r.cycles,
            seq.cycles as f64 / r.cycles as f64
        );
    }

    println!("\nLevenshtein distance, strings of length {}:", lev.len);
    let seq = levenshtein::run_unversioned(MachineCfg::paper(1), &lev);
    seq.assert_ok();
    println!("  unversioned sequential: {:>9} cycles", seq.cycles);
    for cores in [1usize, 2, 4, 8, 16] {
        let r = levenshtein::run_versioned(MachineCfg::paper(cores), &lev);
        r.assert_ok();
        println!(
            "  versioned {cores:>2} cores:     {:>9} cycles  (speedup {:.2}x)",
            r.cycles,
            seq.cycles as f64 / r.cycles as f64
        );
    }
    println!("\nrow tasks pipeline behind their producers: no barriers, only versioned loads");
}
