//! The paper's Figure 1: parallelizing sequential insertions into the end
//! of a linked list with the `versioned<T>` library API.
//!
//! Each task pins the list head at its own entry version, walks
//! hand-over-hand with `lock_load_last`, renames every cell it moves past
//! (so its successor can follow), and appends at the tail. The output is
//! identical to the sequential program no matter how the OS schedules the
//! threads.
//!
//! Run with `cargo run --example linked_list_pipeline`.

use std::sync::Arc;
use std::thread;

use ostructs::core::Versioned;

struct Node {
    value: u32,
    next: Versioned<Option<Arc<Node>>>,
}

/// `insert_end` from Fig. 1, library-API column.
fn insert_end(tid: u64, value: u32, root: &Versioned<Option<Arc<Node>>>) {
    // Enter the list at this task's exact entry version.
    let mut prev = root.clone();
    let mut cur = prev.lock_load_ver(tid, tid).unwrap();
    loop {
        let node = cur.expect("sentinel keeps the list non-empty");
        // Get the latest version of the next pointer and block any
        // following task (hand-over-hand).
        let (_, nxt) = node.next.lock_load_last(tid, tid).unwrap();
        // Unlock the previous cell and increment its version so the next
        // task can enter.
        prev.unlock_ver(tid, Some(tid + 1)).unwrap();
        prev = node.next.clone();
        match nxt {
            Some(_) => cur = nxt,
            None => break,
        }
    }
    // `prev` is the locked tail cell: append the new node.
    let node = Arc::new(Node {
        value,
        next: Versioned::new(),
    });
    node.next.store_ver_at(tid, None).unwrap();
    prev.store_ver(Some(Arc::clone(&node)), tid).unwrap();
    prev.unlock_ver(tid, None).unwrap();
}

fn main() {
    let first_tid = 2u64;
    let n_tasks = 24u64;

    // A sentinel so every inserter passes (and renames) the root.
    let sentinel = Arc::new(Node {
        value: 0,
        next: Versioned::init(first_tid - 1, None),
    });
    let root: Versioned<Option<Arc<Node>>> =
        Versioned::init(first_tid, Some(Arc::clone(&sentinel)));

    // The outer loop of Fig. 1, now spawning one task per insertion.
    let mut handles = Vec::new();
    for tid in first_tid..first_tid + n_tasks {
        let root = root.clone();
        handles.push(thread::spawn(move || insert_end(tid, tid as u32, &root)));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Walk the result: values appear in task order, deterministically.
    let mut values = Vec::new();
    let (_, mut cur) = root.load_last(u64::MAX);
    while let Some(node) = cur {
        if node.value != 0 {
            values.push(node.value);
        }
        (_, cur) = node.next.load_last(u64::MAX);
    }
    println!("list after {n_tasks} concurrent insert_end tasks: {values:?}");
    assert_eq!(
        values,
        (first_tid..first_tid + n_tasks)
            .map(|t| t as u32)
            .collect::<Vec<_>>(),
        "parallel execution produced the sequential order"
    );
    println!("order matches the sequential program — pipelining preserved program order");
}
