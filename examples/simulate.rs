//! Drive the simulated machine directly: build a Table II multicore, run a
//! handful of tasks against raw O-structure instructions, and read out the
//! statistics the paper's evaluation is built from.
//!
//! Run with `cargo run --release --example simulate`.

use std::cell::RefCell;
use std::rc::Rc;

use ostructs::cpu::{task, Machine, MachineCfg};

fn main() {
    // A 4-core machine with the paper's memory system.
    let mut m = Machine::new(MachineCfg::paper(4));

    // Allocate one O-structure root (a versioned word).
    let cell = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).expect("RAM available")
    };

    // Eight tasks forming a dependency chain across all four cores: each
    // loads its predecessor's version (stalling until it exists), computes,
    // and publishes its own.
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut tasks = vec![task(move |ctx| async move {
        ctx.store_version(cell, 1, 1).await; // seed version = task id 1
    })];
    for _ in 0..7 {
        let log = Rc::clone(&log);
        tasks.push(task(move |ctx| async move {
            let tid = ctx.tid();
            let prev = ctx.load_version(cell, tid - 1).await; // true dependency
            ctx.work(500).await; // some computation
            ctx.store_version(cell, tid, prev * 2).await;
            log.borrow_mut()
                .push((tid, ctx.core(), prev * 2, ctx.now()));
        }));
    }
    let report = m.run_tasks(tasks).expect("no deadlock");

    println!("chain of doubling tasks across 4 cores:");
    for (tid, core, value, at) in log.borrow().iter() {
        println!("  task {tid} on core {core}: value {value:>4} at cycle {at}");
    }
    println!("\nphase took {} simulated cycles", report.cycles());

    let st = m.state();
    let st = st.borrow();
    println!("\nmachine statistics:");
    println!("  instructions        : {}", st.cpu.instructions);
    println!("  versioned ops       : {}", st.cpu.versioned_ops);
    println!(
        "  versioned loads     : {} ({} stalled, {} stall cycles)",
        st.cpu.versioned_loads, st.cpu.versioned_loads_stalled, st.cpu.stall_cycles
    );
    println!(
        "  L1 hit rate         : {:.1}%",
        st.ms.hier.stats.l1_hit_rate() * 100.0
    );
    println!(
        "  version blocks      : {} allocated, {} on the free list",
        st.omgr.stats.allocated_blocks,
        st.omgr.free_blocks()
    );
    println!(
        "  direct vs full      : {} compressed-line hits, {} list walks",
        st.omgr.stats.direct_hits, st.omgr.stats.full_lookups
    );

    // The final version chain, straight out of simulated memory.
    let versions = st.omgr.peek_versions(&st.ms, cell).expect("valid cell");
    println!("\nversion-block list (newest first): {versions:?}");
}
